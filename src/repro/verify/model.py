"""Guarded-transition abstraction of the DASH directory protocol.

The simulator (:mod:`repro.machine.directory`) applies every directory
state effect **atomically at service time** — a block is busy from
service to completion and later arrivals queue.  That discipline is what
makes a small-model abstraction sound: a reachable protocol state is
fully described by

* each node's cache state per modeled line — ``I`` / ``S`` / ``M``
  (the writeback-buffer "ghost" of an evicted dirty line is represented
  by the in-flight writeback message itself),
* the multiset of in-flight messages — issued ``read`` / ``write``
  requests and ``wb`` writebacks that have not yet been serviced,
* the **real** directory store (:class:`~repro.core.sparse.FullMapDirectory`
  or :class:`~repro.core.sparse.SparseDirectory`) holding **real**
  :class:`~repro.core.base.DirectoryEntry` objects, so the checker
  exercises the same pointer-overflow / coarse-vector / forced-eviction /
  wide-store code the simulator runs.

Actions (one atomic step each):

``("read", p, l)`` / ``("write", p, l)``
    node ``p`` issues a miss for line ``l`` (guarded: at most one
    outstanding request per node, bounded total in-flight messages);
``("evict", p, l)``
    ``p`` evicts its dirty copy — the copy leaves the cache and a ``wb``
    message starts travelling home;
``("drop", p, l)``
    ``p`` silently drops a clean copy (no message, like the simulator
    without replacement hints);
``("deliver", kind, l, p)``
    the home services one in-flight message, mirroring
    ``DirectoryController._execute_read/_execute_write/_execute_writeback``
    exactly — including writeback cancellation on re-read/re-write and
    stale-writeback drops.

Timing, NAK-retries, and fault injection are deliberately outside the
model: they affect *when* transitions happen, not *which* directory state
transitions exist, and delivery order is explored exhaustively anyway.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.core.base import DirectoryScheme
from repro.core.sparse import (
    DirectoryStore,
    DirLine,
    Eviction,
    FullMapDirectory,
    SparseDirectory,
)
from repro.trace.event import Read, TraceOp, Work, Write
from repro.trace.scripted import ScriptedWorkload

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.machine.config import MachineConfig

INVALID = "I"
SHARED = "S"
MODIFIED = "M"

MSG_READ = "read"
MSG_WRITE = "write"
MSG_WB = "wb"

#: an in-flight message: (kind, line index, issuing node)
Message = Tuple[str, int, int]
#: one atomic step: ("read"|"write"|"evict"|"drop", node, line) or
#: ("deliver", kind, line, node)
Action = Tuple[object, ...]

#: cycles of ``Work`` padding per global step during counterexample
#: replay — large enough that each replayed transaction fully completes
#: (worst case is a broadcast invalidation round, a few hundred cycles)
#: before the next processor issues.
REPLAY_GAP = 5_000

#: replayed machines use tiny direct-mapped caches of this many blocks so
#: an ``evict``/``drop`` action can be forced with one conflicting read.
REPLAY_CACHE_BLOCKS = 8


@dataclass(frozen=True)
class ModelViolation:
    """One invariant breach in a model state or during a delivery."""

    invariant: str
    message: str


@dataclass
class ModelConfig:
    """Bounds and scheme for one exploration.

    ``blocks`` are real block addresses; ``home(b) = b % num_nodes`` as in
    the simulator.  With ``sparse_ways`` set, the home directory is a
    1-set :class:`SparseDirectory` with that many ways and *random*
    replacement — the LRU/LRA policies carry an unbounded tick counter
    that would make the state space infinite, and with the policy RNG
    re-seeded before every action "random" is a pure function of the
    layout, so states merge soundly.
    """

    scheme: DirectoryScheme
    num_nodes: int
    blocks: Tuple[int, ...] = (0,)
    max_inflight: int = 2
    sparse_ways: Optional[int] = None
    include_drop: bool = True
    symmetry: bool = True
    max_states: int = 250_000

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ValueError("num_nodes must be >= 1")
        if self.scheme.num_nodes != self.num_nodes:
            raise ValueError(
                f"scheme tracks {self.scheme.num_nodes} nodes but the model "
                f"has {self.num_nodes}"
            )
        if not self.blocks:
            raise ValueError("need at least one modeled block")
        if len(set(self.blocks)) != len(self.blocks):
            raise ValueError("modeled blocks must be distinct")
        if len(set(b % REPLAY_CACHE_BLOCKS for b in self.blocks)) != len(
            self.blocks
        ):
            # replay forces evictions via conflicting reads; two modeled
            # blocks in one cache set would evict each other
            raise ValueError(
                f"modeled blocks must fall in distinct cache sets "
                f"(distinct mod {REPLAY_CACHE_BLOCKS}) for replayability"
            )
        if self.max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        if self.sparse_ways is not None and self.sparse_ways < 1:
            raise ValueError("sparse_ways must be >= 1")

    def home(self, line: int) -> int:
        """Home node of modeled line ``line`` (block % N, as in DashSystem)."""
        return self.blocks[line] % self.num_nodes


class ModelState:
    """One reachable protocol state (mutable; explorer clones before apply)."""

    __slots__ = ("caches", "msgs", "stores")

    def __init__(
        self,
        caches: List[List[str]],
        msgs: List[Message],
        stores: List[DirectoryStore],
    ) -> None:
        self.caches = caches
        #: in-flight messages, unordered (the network may reorder freely)
        self.msgs = msgs
        #: one directory store per node, as in the real machine (relevant
        #: for sparse configs, where each home has its own sets/ways)
        self.stores = stores

    def clone(self) -> "ModelState":
        """Deep copy, sharing (never copying) the pinned RNG objects.

        ``_reseed`` pins every RNG before each action, so RNG internals
        never carry information between states; sharing them avoids
        deep-copying their Mersenne state on every transition.
        """
        memo: Dict[int, object] = {}
        rng = getattr(self.stores[0].scheme, "rng", None)
        if rng is not None:
            memo[id(rng)] = rng
        for store in self.stores:
            policy = getattr(store, "policy", None)
            if policy is not None:
                memo[id(policy.rng)] = policy.rng
        return copy.deepcopy(self, memo)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ModelState caches={self.caches} msgs={self.msgs}>"


def initial_state(cfg: ModelConfig) -> ModelState:
    """All caches invalid, no messages, empty directories."""
    caches = [[INVALID] * len(cfg.blocks) for _ in range(cfg.num_nodes)]
    scheme = copy.deepcopy(cfg.scheme)
    stores: List[DirectoryStore] = []
    for node in range(cfg.num_nodes):
        if cfg.sparse_ways is None:
            stores.append(FullMapDirectory(scheme))
        else:
            stores.append(
                SparseDirectory(
                    scheme,
                    cfg.sparse_ways,
                    cfg.sparse_ways,
                    policy="random",
                    stride=cfg.num_nodes,
                    offset=node,
                )
            )
    return ModelState(caches, [], stores)


def _reseed(state: ModelState) -> None:
    """Pin every RNG before an action so identical states act identically.

    The scheme RNG (Dir_iNB victim choice) and any sparse replacement
    policy RNG are shared mutable objects; without re-seeding, two runs
    reaching the *same* canonical state could diverge, which would make
    merging states in the explorer unsound.
    """
    state.stores[0].scheme.rng.seed(0)
    for store in state.stores:
        policy = getattr(store, "policy", None)
        if policy is not None:
            policy.rng.seed(0)


def enabled_actions(state: ModelState, cfg: ModelConfig) -> List[Action]:
    """All actions whose guards hold in ``state``."""
    actions: List[Action] = []
    room = len(state.msgs) < cfg.max_inflight
    for p in range(cfg.num_nodes):
        outstanding = any(
            kind in (MSG_READ, MSG_WRITE) and node == p
            for kind, _line, node in state.msgs
        )
        for l in range(len(cfg.blocks)):
            st = state.caches[p][l]
            if st == INVALID:
                if room and not outstanding:
                    actions.append(("read", p, l))
                    actions.append(("write", p, l))
            elif st == SHARED:
                if room and not outstanding:
                    actions.append(("write", p, l))
                if cfg.include_drop:
                    actions.append(("drop", p, l))
            elif st == MODIFIED and room:
                actions.append(("evict", p, l))
    for msg in sorted(set(state.msgs)):
        actions.append(("deliver",) + msg)
    return actions


def apply_action(
    state: ModelState, action: Action, cfg: ModelConfig
) -> Tuple[ModelState, List[ModelViolation]]:
    """Successor state plus any violations raised *during* the transition."""
    ns = state.clone()
    _reseed(ns)
    kind = action[0]
    violations: List[ModelViolation] = []
    if kind == "read":
        _, p, l = action
        ns.msgs.append((MSG_READ, l, p))
    elif kind == "write":
        _, p, l = action
        ns.msgs.append((MSG_WRITE, l, p))
    elif kind == "evict":
        _, p, l = action
        ns.caches[p][l] = INVALID
        ns.msgs.append((MSG_WB, l, p))
    elif kind == "drop":
        _, p, l = action
        ns.caches[p][l] = INVALID
    elif kind == "deliver":
        _, mkind, l, node = action
        ns.msgs.remove((mkind, l, node))
        violations = _deliver(ns, cfg, str(mkind), int(l), int(node))
    else:  # pragma: no cover - defensive
        raise ValueError(f"unknown model action {action!r}")
    return ns, violations


# -- delivery: the mirror of DirectoryController._execute_* ----------------


def _deliver(
    ns: ModelState, cfg: ModelConfig, kind: str, l: int, node: int
) -> List[ModelViolation]:
    block = cfg.blocks[l]
    home = cfg.home(l)
    store = ns.stores[home]
    violations: List[ModelViolation] = []

    if kind == MSG_WB:
        # DirectoryController._execute_writeback: accept iff still the
        # recorded dirty owner; otherwise the writeback is stale (ownership
        # moved on, or a sparse replacement recalled the line) and drops.
        line = store.lookup(block)
        if line is not None and line.dirty and line.owner == node:
            line.dirty = False
            line.owner = None
            if ns.caches[node][l] != INVALID:
                # copies_besides_wb analogue: the evicting node re-fetched
                # the block while its writeback was in flight
                line.entry.record_sharer(node)
            else:
                store.release(block)
        return violations

    # READ / WRITE requests allocate (sparse replacement may recall a
    # victim block first).  Deliveries are atomic, so nothing is busy and
    # AllWaysBusy is unreachable (avoid=frozenset()).
    line, evictions = store.get_or_allocate(block)
    violations.extend(_apply_sparse_evictions(ns, cfg, evictions))

    req = node
    if kind == MSG_READ:
        if line.dirty and line.owner is not None and line.owner != req:
            # forward to the owner: downgrade (or serve from the writeback
            # ghost, in which case the owner's cache is already INVALID and
            # its in-flight wb message is the ghost), record owner + req
            owner = line.owner
            if ns.caches[owner][l] == MODIFIED:
                ns.caches[owner][l] = SHARED
            line.dirty = False
            line.owner = None
            _record_sharer(ns, cfg, line, owner, l)
            _record_sharer(ns, cfg, line, req, l)
        else:
            if line.dirty and line.owner == req:
                # re-read while own writeback is in flight: cancel it
                _cancel_writeback(ns, l, req)
                line.dirty = False
                line.owner = None
            _record_sharer(ns, cfg, line, req, l)
        ns.caches[req][l] = SHARED
        return violations

    # WRITE
    if line.dirty and line.owner is not None and line.owner != req:
        # ownership transfer: the old owner's copy dies, dirty stays set;
        # any writeback req issued before this grant is obsolete (mirror
        # of the engine's grant-time cancellation)
        owner = line.owner
        ns.caches[owner][l] = INVALID
        line.owner = req
        _cancel_writeback(ns, l, req)
        ns.caches[req][l] = MODIFIED
        return violations
    if line.dirty and line.owner == req:
        # re-granting ownership while the requester's writeback is in
        # flight: the writeback is obsolete
        _cancel_writeback(ns, l, req)
        line.dirty = False
        line.owner = None
    else:
        # mirror of the engine's stale-writeback fix: a clean line can
        # still have the requester's obsolete writeback in flight (ghost
        # consumed by a forwarded read); re-dirtying for the same owner
        # must not let it match later
        _cancel_writeback(ns, l, req)
    targets = sorted(line.entry.invalidation_targets(exclude=(req,)))
    # inval/ack conservation: every *live* copy other than the writer must
    # receive an invalidation (and answer with exactly one ack) — checked
    # here, at the one point the controller collects targets
    missed = [
        q
        for q in range(cfg.num_nodes)
        if q != req and ns.caches[q][l] != INVALID and q not in targets
    ]
    if missed:
        violations.append(
            ModelViolation(
                "inval-ack-conservation",
                f"write by node {req} on block {block}: live copies at "
                f"{missed} got no invalidation (targets={targets})",
            )
        )
    for t in targets:
        ns.caches[t][l] = INVALID
    line.entry.reset()
    line.dirty = True
    line.owner = req
    ns.caches[req][l] = MODIFIED
    return violations


def _record_sharer(
    ns: ModelState, cfg: ModelConfig, line: "DirLine", node: int, l: int
) -> None:
    """Mirror of ``DirectoryController._record_sharer`` (Dir_iNB evictions)."""
    victims = line.entry.record_sharer(node)
    for victim in victims:
        ns.caches[victim][l] = INVALID


def _cancel_writeback(ns: ModelState, l: int, node: int) -> None:
    """Drop ``node``'s in-flight writeback of line ``l`` (obsoleted)."""
    try:
        ns.msgs.remove((MSG_WB, l, node))
    except ValueError:  # pragma: no cover - model-internal consistency
        pass


def _apply_sparse_evictions(
    ns: ModelState, cfg: ModelConfig, evictions: Sequence[Eviction]
) -> List[ModelViolation]:
    """Mirror of ``_process_sparse_evictions``: recall every covered copy."""
    violations: List[ModelViolation] = []
    for ev in evictions:
        if ev.block not in cfg.blocks:  # pragma: no cover - defensive
            continue
        l = cfg.blocks.index(ev.block)
        live = [
            q
            for q in range(cfg.num_nodes)
            if ns.caches[q][l] != INVALID and q not in ev.targets
        ]
        if live:
            violations.append(
                ModelViolation(
                    "directory-coverage",
                    f"sparse replacement of block {ev.block} recalled "
                    f"targets {sorted(ev.targets)} but copies live at {live}",
                )
            )
        for t in ev.targets:
            ns.caches[t][l] = INVALID
    return violations


# -- per-state invariants ---------------------------------------------------


def state_violations(
    state: ModelState, cfg: ModelConfig
) -> List[ModelViolation]:
    """The PR 1 invariant predicates, evaluated on one model state.

    Mirrors :func:`repro.machine.invariants.machine_state_violations`:
    single-writer, directory coverage, and the precision contract — plus
    the dirty-owner rule phrased over in-flight writebacks (the model's
    stand-in for the writeback buffer).
    """
    out: List[ModelViolation] = []
    exact_scheme = state.stores[0].scheme.precision == "exact"
    for l, block in enumerate(cfg.blocks):
        home = cfg.home(l)
        line = dict(state.stores[home].lines()).get(block)
        modified = [
            p for p in range(cfg.num_nodes) if state.caches[p][l] == MODIFIED
        ]
        shared = [
            p for p in range(cfg.num_nodes) if state.caches[p][l] == SHARED
        ]
        if len(modified) > 1:
            out.append(
                ModelViolation(
                    "single-writer",
                    f"block {block} is MODIFIED at nodes {modified}",
                )
            )
            continue
        if modified:
            m = modified[0]
            if shared:
                out.append(
                    ModelViolation(
                        "single-writer",
                        f"block {block} is MODIFIED at node {m} but also "
                        f"SHARED at {shared}",
                    )
                )
            if line is None or not line.dirty or line.owner != m:
                out.append(
                    ModelViolation(
                        "directory-coverage",
                        f"block {block} is MODIFIED at node {m} but the "
                        f"home directory says dirty="
                        f"{line.dirty if line else None} owner="
                        f"{line.owner if line else None}",
                    )
                )
            continue
        if line is not None and line.dirty:
            owner = line.owner
            wb_pending = owner is not None and (MSG_WB, l, owner) in state.msgs
            if not wb_pending:
                out.append(
                    ModelViolation(
                        "directory-coverage",
                        f"home marks block {block} dirty (owner {owner}) but "
                        f"no MODIFIED copy or in-flight writeback exists",
                    )
                )
        if shared:
            if line is None:
                out.append(
                    ModelViolation(
                        "directory-coverage",
                        f"block {block} is SHARED at {shared} but the home "
                        f"holds no directory line",
                    )
                )
            else:
                covered = line.entry.invalidation_targets()
                missed = [p for p in shared if p not in covered]
                if missed:
                    out.append(
                        ModelViolation(
                            "directory-coverage",
                            f"block {block} is SHARED at {missed} but the "
                            f"directory covers only {sorted(covered)}",
                        )
                    )
        if exact_scheme and line is not None and not line.entry.is_exact():
            out.append(
                ModelViolation(
                    "precision-contract",
                    f"scheme {state.stores[0].scheme.name} declares "
                    f'precision="exact" but block {block}\'s entry degraded',
                )
            )
    return out


def drain_violation(
    state: ModelState, cfg: ModelConfig
) -> Optional[ModelViolation]:
    """Transient-state termination: in-flight messages must drain.

    From any reachable state, repeatedly delivering the smallest pending
    message must strictly shrink the in-flight set to empty within
    ``len(msgs)`` steps (delivery consumes its message and never issues
    new ones).  A model whose delivery re-queued work would loop here —
    this is the checked guarantee that no transient state is sticky.
    """
    cur = state
    budget = len(state.msgs)
    steps = 0
    while cur.msgs:
        if steps >= budget:
            return ModelViolation(
                "transient-termination",
                f"messages failed to drain within {budget} deliveries: "
                f"{sorted(cur.msgs)} still pending",
            )
        msg = sorted(cur.msgs)[0]
        cur, _ = apply_action(cur, ("deliver",) + msg, cfg)
        steps += 1
    return None


# -- counterexample replay --------------------------------------------------


def _issue_actions(actions: Sequence[Action]) -> List[Tuple[str, int, int]]:
    return [
        (str(a[0]), int(a[1]), int(a[2]))  # type: ignore[arg-type]
        for a in actions
        if a[0] in ("read", "write", "evict", "drop")
    ]


def counterexample_workload(
    actions: Sequence[Action], cfg: ModelConfig
) -> Tuple["MachineConfig", ScriptedWorkload]:
    """Turn an explorer trace into a (MachineConfig, ScriptedWorkload) pair.

    Only the *issue* actions matter — the simulator picks its own delivery
    timing, and the trace's interleaving is approximated by spacing issues
    ``REPLAY_GAP`` cycles apart (global serialization), which reproduces
    every counterexample our mutants produce because their violations are
    visible in quiescent states.  ``evict``/``drop`` actions are forced by
    reading a scratch block that conflicts in the replay machine's tiny
    direct-mapped cache.
    """
    from repro.machine.config import MachineConfig

    block_bytes = 16
    scripts: List[List[TraceOp]] = [[] for _ in range(cfg.num_nodes)]
    last_step = [0] * cfg.num_nodes
    for step, (kind, p, l) in enumerate(_issue_actions(actions), start=1):
        pad = (step - last_step[p]) * REPLAY_GAP
        scripts[p].append(Work(pad))
        block = cfg.blocks[l]
        if kind == "read":
            scripts[p].append(Read(block * block_bytes))
        elif kind == "write":
            scripts[p].append(Write(block * block_bytes))
        else:  # evict / drop: read a conflicting scratch block
            scratch = block + REPLAY_CACHE_BLOCKS
            scripts[p].append(Read(scratch * block_bytes))
        last_step[p] = step
    machine = MachineConfig(
        num_clusters=cfg.num_nodes,
        procs_per_cluster=1,
        block_bytes=block_bytes,
        l1_bytes=block_bytes * REPLAY_CACHE_BLOCKS,
        l1_assoc=1,
        l2_bytes=block_bytes * REPLAY_CACHE_BLOCKS,
        l2_assoc=1,
        replacement_hints=False,
    )
    workload = ScriptedWorkload(scripts, block_bytes=block_bytes)
    return machine, workload


def replay_counterexample(
    actions: Sequence[Action],
    cfg: ModelConfig,
    scheme: DirectoryScheme,
) -> Optional[AssertionError]:
    """Replay a trace through the full simulator under strict invariants.

    Returns the :class:`~repro.machine.invariants.CoherenceViolation`
    (an ``AssertionError`` subclass) the replay triggered, or ``None`` if
    the simulator survived the trace.  ``scheme`` must be a fresh instance
    — the explorer's copy has mutated entries.
    """
    from repro.machine.system import DashSystem

    machine, workload = counterexample_workload(actions, cfg)
    system = DashSystem(
        machine, workload, scheme=scheme, strict=True, invariants="strict"
    )
    try:
        system.run()
        system.check_coherence()
    except AssertionError as violation:
        return violation
    return None
