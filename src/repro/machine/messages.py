"""Message taxonomy — exactly the four classes the paper counts (§5).

    "Request messages are sent by the caches to request data or
    ownership.  Reply messages are sent by the directories to grant
    ownership and/or send data.  Invalidation messages are sent by the
    directories to invalidate a block.  Acknowledgement messages are
    sent by caches in response to invalidations."

Writebacks (and Dir-forwarded requests, lock/barrier arrivals) travel in
the request class; grants and data travel in the reply class.  Only
*inter-cluster* messages are counted — intra-cluster traffic rides the
snoopy bus, which is why the home cluster "does not require an
invalidation" in the paper's broadcast accounting.

Negative acknowledgements (NAKs) — sent by a home refusing service when
the fault layer is active, as on real DASH hardware — ride the *reply*
class: they are directory-to-cache responses, just without a grant.  The
retried request is then counted again in the request class, so fault-era
traffic totals reflect every message that actually crossed the network.
"""

from __future__ import annotations

from enum import IntEnum


class MsgClass(IntEnum):
    """Network message classes, in the paper's order."""

    REQUEST = 0
    REPLY = 1
    INVALIDATION = 2
    ACKNOWLEDGEMENT = 3


#: human-readable labels used by reports
MSG_LABELS = {
    MsgClass.REQUEST: "requests",
    MsgClass.REPLY: "replies",
    MsgClass.INVALIDATION: "invalidations",
    MsgClass.ACKNOWLEDGEMENT: "acknowledgements",
}
