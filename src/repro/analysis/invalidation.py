"""The Figure 2 model: expected invalidations vs. number of sharers.

The paper's methodology (§4.1): *"for each invalidation event, the
sharers were randomly chosen and the number of invalidations required was
recorded.  After a very large number of events, these invalidation
figures were averaged and plotted."*

Conventions matching the paper's numbers:

* the writer and the home are drawn distinct from the sharers, and
  neither ever receives an invalidation **message** (the home's copy dies
  on its local bus) — this is why ``Dir_iB``'s plateau sits at ``N - 2``
  ("the home cluster and the new owning cluster do not require an
  invalidation");
* the full bit vector therefore plots exactly ``y = x`` — the intrinsic
  distribution every other scheme is judged against.
"""

from __future__ import annotations

import random
import re
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

from repro.core.base import DirectoryScheme
from repro.core.registry import make_scheme


@dataclass(frozen=True)
class InvalidationModel:
    """Monte-Carlo estimator for one scheme on an ``num_nodes`` machine."""

    scheme_factory: Callable[[], DirectoryScheme]
    num_nodes: int
    trials: int = 500
    seed: int = 0

    def average_invalidations(self, num_sharers: int) -> float:
        """Mean invalidation messages when ``num_sharers`` nodes share."""
        if not 0 <= num_sharers <= self.num_nodes - 2:
            raise ValueError(
                f"num_sharers must be in [0, {self.num_nodes - 2}] so the "
                f"writer and home can be distinct non-sharers"
            )
        rng = random.Random(f"fig2:{self.seed}:{num_sharers}")
        total = 0
        for _ in range(self.trials):
            scheme = self.scheme_factory()
            writer, home = rng.sample(range(self.num_nodes), 2)
            candidates = [
                n for n in range(self.num_nodes) if n != writer and n != home
            ]
            sharers = rng.sample(candidates, num_sharers)
            entry = scheme.make_entry()
            for s in sharers:
                for victim in entry.record_sharer(s):
                    # Dir_iNB evictions happen at read time; in this model
                    # they simply shrink the sharer set (the cost is
                    # charged in the machine simulation, not here).
                    pass
            targets = entry.invalidation_targets(exclude=(writer, home))
            total += len(targets)
        return total / self.trials


def average_invalidations(
    scheme_name: str,
    num_nodes: int,
    num_sharers: int,
    *,
    trials: int = 500,
    seed: int = 0,
) -> float:
    """One point of Figure 2 for a scheme given by name."""
    model = InvalidationModel(
        lambda: make_scheme(scheme_name, num_nodes, seed=seed),
        num_nodes,
        trials=trials,
        seed=seed,
    )
    return model.average_invalidations(num_sharers)


def exact_expected_invalidations(
    scheme_name: str, num_nodes: int, num_sharers: int
) -> float:
    """Closed-form expectation for the Figure 2 model, where derivable.

    With ``k`` sharers drawn uniformly from the ``M = N - 2`` candidates
    (writer and home excluded):

    * full bit vector: exactly ``k``;
    * ``Dir_iB``: ``k`` while ``k <= i``, else ``N - 2`` (broadcast);
    * ``Dir_iCV_r``: while ``k <= i`` exact; past overflow the count is
      ``sum over regions of |region \\ {writer, home}| * P(region hit)``,
      with ``P(region hit) = 1 - C(M - g, k)/C(M, k)`` for a region
      containing ``g`` candidate nodes (hypergeometric inclusion).

    The Monte-Carlo estimator converges to these values (property-tested),
    which pins down the simulation's random-sharer methodology.  Writer
    and home positions are averaged out by symmetry for the CV case by
    conditioning on them being in different/same regions — we compute the
    expectation *given* writer/home uniformly random, via linearity over
    (region, writer, home) configurations.
    """
    name = scheme_name.strip().lower().replace("_", "")
    M = num_nodes - 2
    if not 0 <= num_sharers <= M:
        raise ValueError(f"num_sharers must be in [0, {M}]")
    if name in ("full", f"dir{num_nodes}", "dirn"):
        return float(num_sharers)
    m = re.match(r"^dir(\d+)b$", name)
    if m:
        i = int(m.group(1))
        return float(num_sharers) if num_sharers <= i else float(M)
    m = re.match(r"^dir(\d+)cv(\d+)$", name)
    if m:
        i, r = int(m.group(1)), int(m.group(2))
        if num_sharers <= i:
            return float(num_sharers)
        return _expected_cv_invalidations(num_nodes, r, num_sharers)
    raise ValueError(
        f"no closed form for {scheme_name!r} (full, Dir_iB, Dir_iCV_r only)"
    )


def _expected_cv_invalidations(num_nodes: int, region_size: int, k: int) -> float:
    """E[covered nodes minus writer/home] for a coarse vector, overflowed.

    Averages over the (writer, home) pair by linearity: for each ordered
    (writer, home) with writer != home, and each region, the region
    contributes ``(region nodes not writer/home) * P(>=1 of the k sharers
    falls in the region's candidate nodes)``.
    """
    regions = [
        range(start, min(start + region_size, num_nodes))
        for start in range(0, num_nodes, region_size)
    ]
    M = num_nodes - 2
    total = 0.0
    pairs = 0
    for writer in range(num_nodes):
        for home in range(num_nodes):
            if home == writer:
                continue
            pairs += 1
            for region in regions:
                g = sum(1 for n in region if n != writer and n != home)
                if g == 0:
                    continue
                p_hit = 1.0 - _hypergeom_zero(M, g, k)
                payoff = sum(1 for n in region if n != writer and n != home)
                total += payoff * p_hit
    return total / pairs


def _hypergeom_zero(M: int, g: int, k: int) -> float:
    """P(none of k draws from M candidates lands among g marked ones)."""
    if k > M - g:
        return 0.0
    # C(M-g, k) / C(M, k) computed stably as a product
    p = 1.0
    for j in range(k):
        p *= (M - g - j) / (M - j)
    return p


def figure2_series(
    scheme_names: Sequence[str],
    num_nodes: int,
    *,
    max_sharers: int | None = None,
    trials: int = 500,
    seed: int = 0,
) -> Dict[str, List[float]]:
    """Average invalidations for sharers = 0 .. max for each scheme.

    Figure 2a uses ``num_nodes=32`` with Dir_N, Dir3B, Dir3CV2;
    Figure 2b uses ``num_nodes=64`` adding Dir3X and Dir3CV4.
    """
    if max_sharers is None:
        max_sharers = num_nodes - 2
    series: Dict[str, List[float]] = {}
    for name in scheme_names:
        model = InvalidationModel(
            lambda name=name: make_scheme(name, num_nodes, seed=seed),
            num_nodes,
            trials=trials,
            seed=seed,
        )
        series[name] = [
            model.average_invalidations(k) for k in range(max_sharers + 1)
        ]
    return series
