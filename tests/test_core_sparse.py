"""Unit tests for directory stores (full map + sparse) and replacement."""

import pytest

from repro.core import (
    FullBitVectorScheme,
    FullMapDirectory,
    SparseDirectory,
    LRAPolicy,
    LRUPolicy,
    RandomPolicy,
    make_policy,
)
from repro.core.sparse import sparse_entries_for_size_factor


def make_sparse(entries=8, assoc=2, policy="lru", nodes=8):
    return SparseDirectory(
        FullBitVectorScheme(nodes), entries, assoc, policy=policy, seed=3
    )


class TestFullMapDirectory:
    def test_lookup_before_allocate_is_none(self):
        d = FullMapDirectory(FullBitVectorScheme(8))
        assert d.lookup(100) is None

    def test_allocate_never_evicts(self):
        d = FullMapDirectory(FullBitVectorScheme(8))
        for block in range(1000):
            line, evictions = d.get_or_allocate(block)
            assert evictions == []
            line.entry.record_sharer(block % 8)
        assert d.capacity_entries() is None

    def test_same_line_returned(self):
        d = FullMapDirectory(FullBitVectorScheme(8))
        line1, _ = d.get_or_allocate(42)
        line1.entry.record_sharer(3)
        line2, _ = d.get_or_allocate(42)
        assert line2.entry.invalidation_targets() == {3}

    def test_release_drops_only_empty_lines(self):
        d = FullMapDirectory(FullBitVectorScheme(8))
        line, _ = d.get_or_allocate(7)
        line.entry.record_sharer(1)
        d.release(7)
        assert d.lookup(7) is not None
        line.entry.reset()
        d.release(7)
        assert d.lookup(7) is None


class TestSparseDirectory:
    def test_fills_empty_ways_before_evicting(self):
        d = make_sparse(entries=8, assoc=2)
        # blocks 0 and 4 map to the same set (4 sets)
        _, ev0 = d.get_or_allocate(0)
        _, ev1 = d.get_or_allocate(4)
        assert ev0 == [] and ev1 == []
        assert d.occupancy() == 2

    def test_conflict_evicts_victim_with_targets(self):
        d = make_sparse(entries=8, assoc=2, policy="lru")
        line0, _ = d.get_or_allocate(0)
        line0.entry.record_sharer(1)
        line0.entry.record_sharer(2)
        d.get_or_allocate(4)
        _, evictions = d.get_or_allocate(8)  # same set, set is full
        assert len(evictions) == 1
        ev = evictions[0]
        assert ev.block == 0  # LRU victim
        assert set(ev.targets) == {1, 2}
        assert not ev.was_dirty

    def test_dirty_eviction_targets_owner(self):
        d = make_sparse(entries=8, assoc=2)
        line, _ = d.get_or_allocate(0)
        line.dirty = True
        line.owner = 5
        d.get_or_allocate(4)
        _, evictions = d.get_or_allocate(8)
        assert evictions[0].was_dirty
        assert evictions[0].targets == (5,)
        assert evictions[0].owner == 5

    def test_evicted_block_is_gone(self):
        d = make_sparse(entries=8, assoc=2)
        d.get_or_allocate(0)
        d.get_or_allocate(4)
        d.get_or_allocate(8)
        assert d.lookup(0) is None or d.lookup(4) is None or d.lookup(8) is None
        assert d.occupancy() == 2

    def test_release_frees_empty_slot(self):
        d = make_sparse(entries=8, assoc=2)
        line, _ = d.get_or_allocate(0)
        line.entry.record_sharer(1)
        d.release(0)  # not empty: kept
        assert d.lookup(0) is not None
        line.reset()
        d.release(0)
        assert d.lookup(0) is None
        assert d.occupancy() == 0

    def test_direct_mapped(self):
        d = make_sparse(entries=4, assoc=1)
        d.get_or_allocate(0)
        _, evictions = d.get_or_allocate(4)
        assert len(evictions) == 1 and evictions[0].block == 0

    def test_lru_policy_protects_recently_touched(self):
        d = make_sparse(entries=8, assoc=2, policy="lru")
        d.get_or_allocate(0)
        d.get_or_allocate(4)
        d.lookup(0)  # touch 0: now 4 is LRU
        _, evictions = d.get_or_allocate(8)
        assert evictions[0].block == 4

    def test_lra_policy_ignores_touches(self):
        d = make_sparse(entries=8, assoc=2, policy="lra")
        d.get_or_allocate(0)
        d.get_or_allocate(4)
        d.lookup(0)  # touch should NOT save 0 under LRA
        _, evictions = d.get_or_allocate(8)
        assert evictions[0].block == 0

    def test_entries_must_divide_by_assoc(self):
        with pytest.raises(ValueError):
            make_sparse(entries=6, assoc=4)

    def test_tag_mapping_roundtrip(self):
        d = make_sparse(entries=16, assoc=4)
        for block in (0, 3, 17, 4091):
            s = d.set_index(block)
            t = d.tag_of(block)
            assert t * d.num_sets + s == block

    def test_replacement_counter(self):
        d = make_sparse(entries=4, assoc=1)
        for block in range(8):
            d.get_or_allocate(block % 8)
        assert d.replacements == 4  # blocks 4..7 each evicted one


class TestReplacementPolicies:
    def test_lru_orders_by_access(self):
        p = LRUPolicy(1, 4)
        for way in range(4):
            p.allocate(0, way)
        p.touch(0, 0)
        assert p.choose_victim(0, range(4)) == 1

    def test_lra_orders_by_allocation(self):
        p = LRAPolicy(1, 4)
        for way in (2, 0, 1, 3):
            p.allocate(0, way)
        p.touch(0, 2)  # irrelevant for LRA
        assert p.choose_victim(0, range(4)) == 2

    def test_random_is_deterministic_per_seed(self):
        p1 = RandomPolicy(1, 8, seed=9)
        p2 = RandomPolicy(1, 8, seed=9)
        picks1 = [p1.choose_victim(0, range(8)) for _ in range(20)]
        picks2 = [p2.choose_victim(0, range(8)) for _ in range(20)]
        assert picks1 == picks2

    def test_random_covers_ways(self):
        p = RandomPolicy(1, 4, seed=0)
        picks = {p.choose_victim(0, range(4)) for _ in range(200)}
        assert picks == {0, 1, 2, 3}

    def test_make_policy_names(self):
        assert isinstance(make_policy("lru", 2, 2), LRUPolicy)
        assert isinstance(make_policy("LRA", 2, 2), LRAPolicy)
        assert isinstance(make_policy("rand", 2, 2), RandomPolicy)
        with pytest.raises(ValueError):
            make_policy("fifo", 2, 2)

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            LRUPolicy(0, 4)


class TestSizeFactorHelper:
    def test_basic(self):
        assert sparse_entries_for_size_factor(1024, 1, 4) == 1024
        assert sparse_entries_for_size_factor(1024, 2, 4) == 2048

    def test_rounds_up_to_assoc(self):
        assert sparse_entries_for_size_factor(10, 1, 4) == 12

    def test_minimum_one_set(self):
        assert sparse_entries_for_size_factor(1, 1, 4) == 4
