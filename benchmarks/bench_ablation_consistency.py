"""Ablation A11: sequential vs release consistency (DASH's model, §2/§7).

§2 describes write completion ("when all acknowledgements are received by
the local cluster, the write is complete") and §7 notes the machinery
"must already exist in systems that implement weak consistency".  DASH's
signature feature is release consistency: the processor does not stall
for those acknowledgements; synchronization operations fence.

This ablation runs the paper's applications under both models.  Expected
shape (asserted): RC is never slower; its benefit tracks each program's
write-stall share — dramatic for MP3D (frequent writes, one barrier per
step), large for DWF (every cell written), small for barrier-dominated
LU, modest for lock-fencing LocusRoute.  Traffic never grows; store-
buffer write combining can even shrink it (MP3D's read-modify-written
cells).

Run standalone:  python benchmarks/bench_ablation_consistency.py
"""

try:
    from benchmarks.paperconfig import APPS, machine
except ImportError:  # running as a standalone script
    from paperconfig import APPS, machine
from repro.analysis import format_table
try:
    from benchmarks.common import bench_entry, run_grid
except ImportError:  # standalone script
    from common import bench_entry, run_grid


def compute():
    flat = run_grid({
        (app, rc): (machine("full", release_consistency=rc), build)
        for app, build in APPS.items()
        for rc in (False, True)
    })
    return {
        app: (flat[(app, False)], flat[(app, True)]) for app in APPS
    }


def check(results) -> None:
    for app, (sc, rc) in results.items():
        assert rc.exec_time <= 1.01 * sc.exec_time, app  # never slower
        # consistency changes when the processor waits, not what the
        # directory does — except that write combining in the store
        # buffer can *remove* messages (MP3D's read-modify-write cells)
        assert rc.total_messages <= 1.05 * sc.total_messages, app
    # MP3D (write-heavy, one barrier per step) gains the most
    gain = {
        app: 1 - rc.exec_time / sc.exec_time
        for app, (sc, rc) in results.items()
    }
    assert gain["MP3D"] == max(gain.values()), gain
    assert gain["MP3D"] > 0.1, gain


def report() -> None:
    results = compute()
    check(results)
    rows = []
    for app, (sc, rc) in results.items():
        rows.append([
            app,
            int(sc.exec_time),
            int(rc.exec_time),
            round(rc.exec_time / sc.exec_time, 3),
            sc.total_messages,
            rc.total_messages,
        ])
    print("=== Ablation A11: sequential vs release consistency ===")
    print(format_table(
        ["app", "SC exec", "RC exec", "RC/SC", "SC msgs", "RC msgs"], rows
    ))


def test_consistency(benchmark):
    results = benchmark.pedantic(compute, rounds=1, iterations=1)
    check(results)


if __name__ == "__main__":
    raise SystemExit(bench_entry(report, description=__doc__))
