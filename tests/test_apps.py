"""Application workloads: structure, determinism, and sharing patterns."""

import pytest

from repro.apps import (
    DWFWorkload,
    LocusRouteWorkload,
    LUWorkload,
    MP3DWorkload,
    PAPER_APPS,
    SharingDegreeWorkload,
    UniformRandomWorkload,
    MultiprogrammedWorkload,
)
from repro.trace import characterize
from repro.trace.event import Barrier, Lock, Read, Unlock, Work, Write

P = 8


def small_instances():
    return {
        "LU": LUWorkload(P, matrix_n=12),
        "DWF": DWFWorkload(P, pattern_len=16, library_len=24, col_block=8),
        "MP3D": MP3DWorkload(P, num_particles=48, steps=2),
        "LocusRoute": LocusRouteWorkload(
            P, grid_cols=32, grid_rows=8, num_regions=4, wires_per_region=4
        ),
        "sharing": SharingDegreeWorkload(P, sharers=3, num_blocks=8, rounds=2),
        "random": UniformRandomWorkload(P, refs_per_proc=50),
        "multi": MultiprogrammedWorkload(P, partitions=2, rounds=2),
    }


class TestAllWorkloads:
    @pytest.mark.parametrize("name", list(small_instances()))
    def test_streams_restartable(self, name):
        wl = small_instances()[name]
        for p in range(0, P, 3):
            assert list(wl.stream(p)) == list(wl.stream(p)), name

    @pytest.mark.parametrize("name", list(small_instances()))
    def test_nonempty_shared_refs(self, name):
        st = characterize(small_instances()[name])
        assert st.shared_refs > 0
        assert st.shared_reads > 0

    @pytest.mark.parametrize("name", list(small_instances()))
    def test_addresses_inside_allocated_space(self, name):
        wl = small_instances()[name]
        limit = wl.space._next
        for p in range(P):
            for op in wl.stream(p):
                if isinstance(op, (Read, Write)):
                    assert 0 <= op.addr < limit

    @pytest.mark.parametrize("name", list(small_instances()))
    def test_same_seed_identical_totals(self, name):
        a = characterize(small_instances()[name])
        b = characterize(small_instances()[name])
        assert a == b


class TestLU:
    def test_pivot_column_read_by_all(self):
        wl = LUWorkload(4, matrix_n=8)
        # element (2, 0) of pivot column 0 must be read by every processor
        target = wl.matrix.addr(0 * 8 + 2)
        for p in range(4):
            reads = {op.addr for op in wl.stream(p) if isinstance(op, Read)}
            assert target in reads, f"proc {p} never reads the pivot column"

    def test_column_written_only_by_owner(self):
        wl = LUWorkload(4, matrix_n=8)
        n = wl.n
        for p in range(4):
            for op in wl.stream(p):
                if isinstance(op, Write) and op.addr < wl.matrix.base + wl.matrix.nbytes:
                    element = (op.addr - wl.matrix.base) // 8
                    column = element // n
                    assert wl.owner(column) == p

    def test_ready_flag_posted_by_owner_read_by_others(self):
        wl = LUWorkload(4, matrix_n=8)
        flag0 = wl.flags.addr(0)
        for p in range(4):
            ops = list(wl.stream(p))
            if wl.owner(0) == p:
                assert any(isinstance(o, Write) and o.addr == flag0 for o in ops)
            else:
                assert any(isinstance(o, Read) and o.addr == flag0 for o in ops)

    def test_barrier_count(self):
        wl = LUWorkload(4, matrix_n=8)
        st = characterize(wl)
        # 2 barriers per step, (n-1) steps, all 4 procs participate
        assert st.sync_ops == 2 * 7 * 4

    def test_column_major_contiguity(self):
        wl = LUWorkload(2, matrix_n=4)
        # consecutive rows of one column are 8 bytes apart
        assert wl._addr(1, 2) - wl._addr(0, 2) == 8

    def test_rejects_tiny_matrix(self):
        with pytest.raises(ValueError):
            LUWorkload(2, matrix_n=1)


class TestDWF:
    def test_bands_partition_rows(self):
        wl = DWFWorkload(5, pattern_len=17, library_len=16, col_block=8)
        rows = []
        for p in range(5):
            rows.extend(wl.band_rows(p))
        assert sorted(rows) == list(range(17))

    def test_library_read_by_all(self):
        wl = DWFWorkload(4, pattern_len=8, library_len=16, col_block=4)
        addr0 = wl.library.addr(3)
        for p in range(4):
            reads = {op.addr for op in wl.stream(p) if isinstance(op, Read)}
            assert addr0 in reads

    def test_score_table_read_by_all(self):
        wl = DWFWorkload(4, pattern_len=8, library_len=16, col_block=4)
        lo, hi = wl.score_table.base, wl.score_table.base + wl.score_table.nbytes
        for p in range(4):
            assert any(
                isinstance(op, Read) and lo <= op.addr < hi for op in wl.stream(p)
            )

    def test_matrix_cells_written_once(self):
        wl = DWFWorkload(4, pattern_len=8, library_len=16, col_block=4)
        lo, hi = wl.matrix.base, wl.matrix.base + wl.matrix.nbytes
        writes = []
        for p in range(4):
            writes.extend(
                op.addr for op in wl.stream(p)
                if isinstance(op, Write) and lo <= op.addr < hi
            )
        assert len(writes) == len(set(writes)) == 8 * 16

    def test_best_score_read_by_all_written_rarely(self):
        wl = DWFWorkload(4, pattern_len=8, library_len=64, col_block=4)
        addr = wl.best_score.addr(0)
        total_writes = 0
        for p in range(4):
            ops = list(wl.stream(p))
            assert any(isinstance(o, Read) and o.addr == addr for o in ops)
            total_writes += sum(
                1 for o in ops if isinstance(o, Write) and o.addr == addr
            )
        reads = 4 * wl.num_col_blocks
        assert 0 <= total_writes < reads / 2  # rare updates

    def test_stage_count(self):
        wl = DWFWorkload(4, pattern_len=8, library_len=32, col_block=8)
        assert wl.num_stages == 4 + 4 - 1


class TestMP3D:
    def test_particles_partitioned(self):
        wl = MP3DWorkload(4, num_particles=19, steps=1)
        owned = []
        for p in range(4):
            owned.extend(wl.owned(p))
        assert sorted(owned) == list(range(19))

    def test_own_particles_written_each_step(self):
        wl = MP3DWorkload(4, num_particles=16, steps=2, collision_fraction=0)
        for p in range(4):
            writes = [op.addr for op in wl.stream(p) if isinstance(op, Write)]
            for particle in wl.owned(p):
                assert writes.count(wl.particles.addr(particle)) == 2

    def test_cells_touched_stay_near_zone(self):
        wl = MP3DWorkload(4, num_particles=64, space_cells=32, steps=3,
                          collision_fraction=0)
        for p in range(4):
            zone = wl.zone(p)
            lo, hi = max(0, zone.start - 1), min(31, zone.stop)
            for op in wl.stream(p):
                if isinstance(op, (Read, Write)):
                    off = op.addr - wl.cells.base
                    if 0 <= off < wl.cells.nbytes:
                        cell = off // 8
                        assert lo <= cell <= hi

    def test_collision_fraction_bounds(self):
        with pytest.raises(ValueError):
            MP3DWorkload(4, num_particles=16, collision_fraction=1.5)


class TestLocusRoute:
    def test_wires_confined_to_region_columns(self):
        wl = LocusRouteWorkload(
            4, grid_cols=32, grid_rows=4, num_regions=4, wires_per_region=6
        )
        for region, wires in enumerate(wl._wires):
            lo = region * wl.region_cols
            hi = lo + wl.region_cols
            for _row, col, length in wires:
                assert lo <= col and col + length <= hi

    def test_each_wire_routed_exactly_once(self):
        wl = LocusRouteWorkload(
            4, grid_cols=32, grid_rows=4, num_regions=2, wires_per_region=5
        )
        # total queue grabs = wires per region per member processor
        total_locks = 0
        for p in range(4):
            total_locks += sum(
                1 for op in wl.stream(p) if isinstance(op, Lock)
            )
        assert total_locks == 2 * 5 * 2  # regions * wires * procs-per-region

    def test_density_read_by_every_processor(self):
        wl = LocusRouteWorkload(
            4, grid_cols=32, grid_rows=4, num_regions=4, wires_per_region=4
        )
        lo, hi = wl.density.base, wl.density.base + wl.density.nbytes
        for p in range(4):
            assert any(
                isinstance(op, Read) and lo <= op.addr < hi
                for op in wl.stream(p)
            )

    def test_grid_divisibility_enforced(self):
        with pytest.raises(ValueError):
            LocusRouteWorkload(4, grid_cols=30, num_regions=4)


class TestSynthetic:
    def test_sharing_degree_exact(self):
        wl = SharingDegreeWorkload(8, sharers=5, num_blocks=4, rounds=3)
        for r in range(3):
            for readers, writer in wl.plan[r]:
                assert len(set(readers)) == 5
                assert 0 <= writer < 8

    def test_sharers_bounds(self):
        with pytest.raises(ValueError):
            SharingDegreeWorkload(4, sharers=5)

    def test_multiprogram_partitions_disjoint_data(self):
        wl = MultiprogrammedWorkload(8, partitions=4, rounds=2)
        seen = {}
        for p in range(8):
            part = wl.partition_of(p)
            for op in wl.stream(p):
                if isinstance(op, (Read, Write)):
                    off = op.addr - wl.data.base
                    if 0 <= off < wl.data.nbytes:
                        block_part = off // (
                            wl.blocks_per_partition * wl.block_bytes
                        )
                        assert block_part == part

    def test_multiprogram_scatter_changes_members(self):
        aligned = MultiprogrammedWorkload(8, partitions=2, scatter=False)
        scattered = MultiprogrammedWorkload(8, partitions=2, scatter=True)
        assert aligned.members != scattered.members
        # both are valid partitions of the processors
        for wl in (aligned, scattered):
            all_members = sorted(m for ms in wl.members for m in ms)
            assert all_members == list(range(8))

    def test_uniform_random_write_fraction(self):
        wl = UniformRandomWorkload(
            4, refs_per_proc=500, write_fraction=0.5, seed=3
        )
        st = characterize(wl)
        assert 0.4 < st.shared_writes / st.shared_refs < 0.6

    def test_paper_apps_registry(self):
        assert set(PAPER_APPS) == {"LU", "DWF", "MP3D", "LocusRoute"}
