"""Shared-entry directory (§7 "multiple blocks share one wide entry")."""

import pytest

from repro.core import FullBitVectorScheme, SharedEntryDirectory
from repro.machine import DashSystem, MachineConfig, run_workload
from repro.apps import UniformRandomWorkload
from repro.trace.event import Read, Work, Write
from repro.trace.scripted import ScriptedWorkload


def addr(block):
    return block * 16


class TestStoreUnit:
    def test_groups_share_one_entry(self):
        d = SharedEntryDirectory(FullBitVectorScheme(8), group_size=2)
        l0, _ = d.get_or_allocate(0)
        l1, _ = d.get_or_allocate(1)
        l2, _ = d.get_or_allocate(2)
        assert l0.entry is l1.entry
        assert l0.entry is not l2.entry

    def test_sharers_pooled_across_group(self):
        d = SharedEntryDirectory(FullBitVectorScheme(8), group_size=2)
        l0, _ = d.get_or_allocate(0)
        l1, _ = d.get_or_allocate(1)
        l0.entry.record_sharer(3)
        assert l1.entry.invalidation_targets() == {3}

    def test_dirty_state_is_per_block(self):
        d = SharedEntryDirectory(FullBitVectorScheme(8), group_size=2)
        l0, _ = d.get_or_allocate(0)
        l1, _ = d.get_or_allocate(1)
        l0.dirty, l0.owner = True, 2
        assert not l1.dirty and l1.owner is None

    def test_blocks_invalidated_with_covers_group(self):
        d = SharedEntryDirectory(FullBitVectorScheme(8), group_size=4)
        assert d.blocks_invalidated_with(5) == (4, 5, 6, 7)

    def test_stride_offset_mapping(self):
        # home 1 of a 4-cluster machine: blocks 1, 5, 9, 13, ...
        d = SharedEntryDirectory(
            FullBitVectorScheme(8), group_size=2, stride=4, offset=1
        )
        assert d.group_of(1) == 0 and d.group_of(5) == 0
        assert d.group_of(9) == 1
        assert d.blocks_invalidated_with(1) == (1, 5)
        with pytest.raises(ValueError):
            d.group_of(2)  # not homed here

    def test_amortized_storage(self):
        d = SharedEntryDirectory(FullBitVectorScheme(32), group_size=4)
        assert d.presence_bits_per_block() == 8.0

    def test_release_frees_group_when_last_line_goes(self):
        d = SharedEntryDirectory(FullBitVectorScheme(8), group_size=2)
        l0, _ = d.get_or_allocate(0)
        d.get_or_allocate(1)
        d.release(1)  # entry empty -> line 1 freed
        assert d.lookup(1) is None
        assert d.lookup(0) is not None  # group entry still held by block 0

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            SharedEntryDirectory(FullBitVectorScheme(8), group_size=0)
        with pytest.raises(ValueError):
            SharedEntryDirectory(FullBitVectorScheme(8), 2, stride=2, offset=2)


class TestMachineIntegration:
    def run_scripts(self, scripts, group=2, **cfg):
        defaults = dict(
            num_clusters=4, l1_bytes=256, l2_bytes=1024,
            shared_entry_group=group,
        )
        defaults.update(cfg)
        system = DashSystem(
            MachineConfig(**defaults), ScriptedWorkload(scripts, block_bytes=16)
        )
        stats = system.run()
        system.check_coherence()
        return system, stats

    def test_write_invalidates_group_mates(self):
        # blocks 0 and 4 share home 0's group-0 entry.  Proc 1 reads
        # block 4; proc 2 writes block 0: proc 1's copy of block 4 must
        # die (the pooled entry is reset).
        scripts = [
            [],
            [Read(addr(4)), Work(2000)],
            [Work(500), Write(addr(0))],
            [],
        ]
        system, stats = self.run_scripts(scripts)
        assert not system.clusters[1].has_copy(4)
        assert stats.invalidations == 1  # one message names the group

    def test_dirty_group_mate_survives(self):
        # proc 1 dirties block 4; proc 2 writes block 0 (same group):
        # block 4's dirty copy must NOT be destroyed.
        scripts = [
            [],
            [Write(addr(4)), Work(2000)],
            [Work(500), Write(addr(0))],
            [],
        ]
        system, stats = self.run_scripts(scripts)
        assert system.clusters[1].holds_dirty(4)

    def test_writer_keeps_conservative_coverage(self):
        # proc 1 reads block 4, then writes block 0 (same group).  Its
        # copy of 4 survives and the directory must still cover it, so a
        # later write by proc 2 to block 4 invalidates proc 1.
        scripts = [
            [],
            [Read(addr(4)), Write(addr(0)), Work(2000)],
            [Work(800), Write(addr(4))],
            [],
        ]
        system, stats = self.run_scripts(scripts)
        assert not system.clusters[1].has_copy(4)

    def test_group_one_behaves_like_full_map(self):
        wl_scripts = [
            [Read(addr(b)) for b in range(6)],
            [Write(addr(b)) for b in range(6)],
            [Read(addr(b)) for b in range(2, 8)],
            [],
        ]
        _, grouped = self.run_scripts(wl_scripts, group=1)
        cfg = MachineConfig(num_clusters=4, l1_bytes=256, l2_bytes=1024)
        system = DashSystem(
            cfg, ScriptedWorkload(wl_scripts, block_bytes=16)
        )
        plain = system.run()
        assert grouped.to_dict() == plain.to_dict()

    def test_random_stress_coherent_across_group_sizes(self):
        for group in (2, 4):
            cfg = MachineConfig(
                num_clusters=4, l1_bytes=128, l2_bytes=256,
                shared_entry_group=group,
            )
            wl = UniformRandomWorkload(
                4, refs_per_proc=300, heap_blocks=32, write_fraction=0.4,
                seed=13,
            )
            run_workload(cfg, wl, check=True)

    def test_grouping_adds_invalidations(self):
        def traffic(group):
            cfg = MachineConfig(
                num_clusters=4, l1_bytes=256, l2_bytes=1024,
                shared_entry_group=group,
            )
            wl = UniformRandomWorkload(
                4, refs_per_proc=400, heap_blocks=24, write_fraction=0.3,
                seed=4,
            )
            return run_workload(cfg, wl, check=True).invalidations_sent()

        assert traffic(1) <= traffic(2) <= traffic(4)

    def test_exclusive_with_sparse(self):
        with pytest.raises(ValueError, match="mutually exclusive"):
            MachineConfig(
                num_clusters=4, shared_entry_group=2, sparse_size_factor=1.0
            ).validate()
