"""The paper's four benchmark applications, reconstructed (§5, Table 2).

Each is the real parallel algorithm re-implemented as a trace-generating
workload with the same data structures and the same sharing pattern the
paper describes:

* :class:`LUWorkload` — dense L-U factorization; the pivot column is read
  by every processor right after the pivot step (§6.2), the pattern that
  breaks ``Dir_iNB`` and triggers broadcasts on sparse replacement;
* :class:`DWFWorkload` — wavefront gene-database matching; read-only
  pattern/library arrays "constantly read by all the processes", with a
  small moving working set (flat response to directory sparsity, §6.3.1);
* :class:`MP3DWorkload` — 3-D particle simulation; most data shared by
  one or two processors at a time, easy for every scheme (§6.2);
* :class:`LocusRouteWorkload` — standard-cell routing; the cost array is
  shared among the several processors working on a geographic region —
  the one application where ``Dir_iNB`` beats ``Dir_iB`` (§6.2).

Plus synthetic generators (:mod:`repro.apps.synthetic`) for controlled
sharing-degree experiments and stress tests.
"""

from repro.apps.lu import LUWorkload
from repro.apps.dwf import DWFWorkload
from repro.apps.mp3d import MP3DWorkload
from repro.apps.locusroute import LocusRouteWorkload
from repro.apps.synthetic import (
    SharingDegreeWorkload,
    UniformRandomWorkload,
    MultiprogrammedWorkload,
)
from repro.apps.patterns import (
    PATTERN_CLASSES,
    FrequentReadWritePattern,
    MigratoryPattern,
    MostlyReadPattern,
    ReadOnlyPattern,
    SynchronizationPattern,
)

#: the paper's four applications, in Table 2 order
PAPER_APPS = {
    "LU": LUWorkload,
    "DWF": DWFWorkload,
    "MP3D": MP3DWorkload,
    "LocusRoute": LocusRouteWorkload,
}

__all__ = [
    "LUWorkload",
    "DWFWorkload",
    "MP3DWorkload",
    "LocusRouteWorkload",
    "SharingDegreeWorkload",
    "UniformRandomWorkload",
    "MultiprogrammedWorkload",
    "PAPER_APPS",
    "PATTERN_CLASSES",
    "ReadOnlyPattern",
    "MigratoryPattern",
    "MostlyReadPattern",
    "FrequentReadWritePattern",
    "SynchronizationPattern",
]
