"""Simulator-specific AST lint rules the type checker cannot express.

Rules (see ``docs/verification.md`` for the full rationale):

``enum-dispatch``
    Dict literals keyed by two or more members of a protocol enum
    (``MsgClass``, ``FaultKind``, ``InvalCause``, ``LineState``) and
    ``if/elif`` chains comparing against them must cover every member —
    a silently unhandled message class is how protocols rot.
``unseeded-random``
    ``machine/`` and ``core/`` must not call the module-level ``random``
    functions, ``uuid``, or ``secrets``: simulations must be
    deterministic per seed.  Constructing a seeded
    ``random.Random(...)`` is allowed.
``wall-clock``
    ``machine/`` and ``core/`` must not read the wall clock
    (``time.time()``, ``time.perf_counter()``, ``datetime.now()``, ...)
    or OS entropy (``os.urandom``) — the same determinism hazard as
    unseeded randomness, but routinely smuggled in as "just timing".
    Simulated time lives on the event queue; host time belongs in
    ``obs``/``analysis`` (profiling, timeouts), which are out of scope.
``unordered-iteration``
    ``machine/`` and ``core/`` must not iterate directly over set
    displays, ``set()``/``frozenset()`` calls, or the (frozen-set
    valued) ``invalidation_targets()`` — Python set iteration order
    varies across runs for non-int elements and hides ordering bugs
    either way.  Wrap in ``sorted(...)``.
``unregistered-scheme``
    Every concrete ``DirectoryScheme`` subclass defined under ``core/``
    must be referenced by ``core/registry.py`` so name-based lookup
    (CLI, benchmarks, docs) can reach it.
``undeclared-stat``
    ``stats.X += ...`` requires ``X`` to be declared on ``SimStats`` or
    ``ProcessorStats`` — incrementing an undeclared counter would create
    it on the fly on one code path and crash or silently read 0 on
    another.
``undeclared-obs-name``
    Every literal event name passed to ``.emit(...)`` / ``.emit_now(...)``
    / ``.emit_counter(...)`` must be declared in ``obs/registry.py``'s
    ``EVENTS``, and every literal metric name passed to a metrics
    registry's ``.counter(...)`` / ``.gauge(...)`` / ``.histogram(...)``
    must be in ``METRICS`` — an unregistered name would silently fork the
    taxonomy that exporters, reports, and ``repro obs diff`` agree on.
    (Dynamically built names are validated at runtime by the strict
    tracer instead.)
``dead-metric``
    The inverse direction: every metric declared in ``obs/registry.py``'s
    ``METRICS`` must be incremented somewhere — a declared-but-dead name
    keeps showing up in the glossary and diff baselines while silently
    recording nothing.  A metric counts as live when some
    ``.counter(...)``/``.gauge(...)``/``.histogram(...)`` call names it
    literally or via an f-string whose literal prefix covers it
    (``f"txn_latency.{kind}"`` keeps every ``txn_latency.*`` metric
    alive).  Only checked on tree-wide runs — the lint set must include
    both ``obs/registry.py`` and the ``machine/`` layer, else a partial
    run could not see the increment sites and everything would look
    dead.
``unpicklable-continuation``
    Callbacks scheduled into the event queue (``events.at(...)`` /
    ``events.after(...)``) under ``machine/`` must be bound methods of
    machine components, not lambdas, closures, or nested functions —
    the checkpoint serializer (``machine/checkpoint.py``) encodes heap
    continuations as ``(component, method)`` descriptors, and an
    anonymous callable would make the machine state unsnapshottable
    (the encoder raises ``UnregisteredContinuationError`` at capture
    time; this rule catches it at review time).
``span-leak``
    A split span opened in ``machine/`` (``.emit(..., kind=BEGIN)``)
    must have a matching close (``kind=END`` with the same literal event
    name) somewhere in the same module — an unclosed ``"B"`` record
    renders as a span running to the end of time in Perfetto and skews
    every duration aggregate built from the trace.  Complete-span
    emits (``kind=SPAN`` / a ``dur=``) are exempt: they cannot leak.

Suppressions are **line-targeted**: ``# lint: ignore[rule-name]`` (or a
bare ``# lint: ignore`` for all rules) silences findings anchored to the
annotated line only.  For an intentional whole-file opt-out use the
``-file`` suffix form — ``# lint: ignore-file[rule-name]`` (or bare
``# lint: ignore-file``) anywhere in the file.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Set, Tuple

#: rule name -> one-line description (the catalog, also used by the CLI)
LINT_RULES: Dict[str, str] = {
    "enum-dispatch": "enum-keyed dispatch must cover every member",
    "unseeded-random": "no unseeded randomness (random/uuid/secrets) in "
    "machine/ and core/",
    "wall-clock": "no wall-clock time or OS entropy (time.*, "
    "datetime.now, os.urandom) in machine/ and core/",
    "unordered-iteration": "no direct iteration over sets or "
    "invalidation_targets(); sort first",
    "unregistered-scheme": "every concrete DirectoryScheme must appear in "
    "core/registry.py",
    "undeclared-stat": "stats counters must be declared before incremented",
    "undeclared-obs-name": "trace event / metric names must be declared in "
    "obs/registry.py",
    "dead-metric": "metrics declared in obs/registry.py must be "
    "incremented somewhere (tree-wide runs only)",
    "span-leak": "a split span opened (kind=BEGIN) in machine/ needs a "
    "same-module kind=END close with the same name",
    "unpicklable-continuation": "event-queue callbacks in machine/ must be "
    "bound methods, not lambdas/closures (checkpointing cannot "
    "serialize them)",
}

#: enums whose dispatch must be exhaustive, with their member names
_DISPATCH_ENUMS: Dict[str, FrozenSet[str]] = {
    "MsgClass": frozenset(
        {"REQUEST", "REPLY", "INVALIDATION", "ACKNOWLEDGEMENT"}
    ),
    "FaultKind": frozenset({"DROP", "DUPLICATE", "DELAY", "NAK", "CORRUPT"}),
    "InvalCause": frozenset({"WRITE", "NB_EVICT", "SPARSE_REPL"}),
    "LineState": frozenset({"SHARED", "DIRTY"}),
}

_BANNED_TIME = frozenset(
    {
        "time",
        "time_ns",
        "perf_counter",
        "perf_counter_ns",
        "monotonic",
        "monotonic_ns",
        "process_time",
        "process_time_ns",
    }
)
_ALLOWED_RANDOM = frozenset({"Random", "SystemRandom", "getstate", "setstate"})
_BANNED_UUID = frozenset({"uuid1", "uuid4"})
#: ``datetime.datetime`` / ``datetime.date`` classmethods that read the clock
_BANNED_DATETIME = frozenset({"now", "utcnow", "today"})


@dataclass(frozen=True)
class Finding:
    """One lint violation."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def format(self) -> str:
        """``path:line:col: [rule] message`` — the compiler-style form."""
        return f"{self.path}:{self.line}:{self.col}: [{self.rule}] {self.message}"


@dataclass(frozen=True)
class _IgnoreIndex:
    """Parsed suppression comments of one module."""

    file_all: bool  #: ``# lint: ignore-file`` anywhere
    file_rules: FrozenSet[str]  #: ``# lint: ignore-file[...]`` rule names
    line_all: FrozenSet[int]  #: lines carrying a bare ``# lint: ignore``
    line_rules: Dict[int, FrozenSet[str]]  #: line -> ignored rule names


_IGNORE_MARKER = "# lint: ignore"


def _parse_ignores(source_lines: List[str]) -> _IgnoreIndex:
    file_all = False
    file_rules: Set[str] = set()
    line_all: Set[int] = set()
    line_rules: Dict[int, FrozenSet[str]] = {}
    for lineno, text in enumerate(source_lines, start=1):
        marker = text.rfind(_IGNORE_MARKER)
        if marker == -1:
            continue
        spec = text[marker + len(_IGNORE_MARKER):]
        file_wide = spec.startswith("-file")
        if file_wide:
            spec = spec[len("-file"):]
        spec = spec.strip()
        if not spec.startswith("["):
            # bare ignore: all rules
            if file_wide:
                file_all = True
            else:
                line_all.add(lineno)
            continue
        names = spec[1:spec.find("]")] if "]" in spec else spec[1:]
        rules = frozenset(n.strip() for n in names.split(","))
        if file_wide:
            file_rules |= rules
        else:
            line_rules[lineno] = line_rules.get(lineno, frozenset()) | rules
    return _IgnoreIndex(file_all, frozenset(file_rules), frozenset(line_all),
                        line_rules)


@dataclass
class _Module:
    path: Path
    rel: str
    tree: ast.Module
    source_lines: List[str]
    ignores: _IgnoreIndex

    def determinism_scoped(self) -> bool:
        """Rules about nondeterminism apply to machine/ and core/ only."""
        parts = Path(self.rel).parts
        return "machine" in parts or "core" in parts


def _suppressed(module: _Module, lineno: int, rule: str) -> bool:
    """True when the finding is silenced by a line or file annotation."""
    ig = module.ignores
    if ig.file_all or rule in ig.file_rules:
        return True
    if lineno in ig.line_all:
        return True
    return rule in ig.line_rules.get(lineno, frozenset())


# -- rule: enum-dispatch ----------------------------------------------------


def _enum_member(node: ast.expr) -> Optional[Tuple[str, str]]:
    """``MsgClass.REQUEST`` -> ("MsgClass", "REQUEST")."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id in _DISPATCH_ENUMS
        and node.attr in _DISPATCH_ENUMS[node.value.id]
    ):
        return node.value.id, node.attr
    return None


def _check_enum_dispatch(module: _Module) -> Iterator[Finding]:
    elif_bodies = set()
    for node in ast.walk(module.tree):
        if isinstance(node, ast.If) and len(node.orelse) == 1 and isinstance(
            node.orelse[0], ast.If
        ):
            elif_bodies.add(id(node.orelse[0]))
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Dict):
            yield from _check_enum_dict(module, node)
        elif isinstance(node, ast.If) and id(node) not in elif_bodies:
            yield from _check_enum_chain(module, node)


def _check_enum_dict(module: _Module, node: ast.Dict) -> Iterator[Finding]:
    seen: Dict[str, Set[str]] = {}
    for key in node.keys:
        if key is None:  # dict unpacking
            return
        member = _enum_member(key)
        if member is None:
            return
        seen.setdefault(member[0], set()).add(member[1])
    if len(seen) != 1:
        return
    enum_name, members = next(iter(seen.items()))
    if len(members) < 2:
        return
    missing = _DISPATCH_ENUMS[enum_name] - members
    if missing:
        yield Finding(
            str(module.path),
            node.lineno,
            node.col_offset,
            "enum-dispatch",
            f"dict keyed by {enum_name} misses "
            f"{', '.join(sorted(missing))}",
        )


def _check_enum_chain(module: _Module, node: ast.If) -> Iterator[Finding]:
    """``if x == E.A: ... elif x == E.B: ...`` with no else must cover E."""
    seen: Dict[str, Set[str]] = {}
    cursor: ast.stmt = node
    first_line = node.lineno
    while True:
        assert isinstance(cursor, ast.If)
        test = cursor.test
        if not (
            isinstance(test, ast.Compare)
            and len(test.ops) == 1
            and isinstance(test.ops[0], (ast.Eq, ast.Is))
            and len(test.comparators) == 1
        ):
            return
        member = _enum_member(test.comparators[0]) or _enum_member(test.left)
        if member is None:
            return
        seen.setdefault(member[0], set()).add(member[1])
        if len(cursor.orelse) == 1 and isinstance(cursor.orelse[0], ast.If):
            cursor = cursor.orelse[0]
            continue
        has_else = bool(cursor.orelse)
        break
    if has_else or len(seen) != 1:
        return
    enum_name, members = next(iter(seen.items()))
    if len(members) < 2:
        return
    missing = _DISPATCH_ENUMS[enum_name] - members
    if missing:
        yield Finding(
            str(module.path),
            first_line,
            node.col_offset,
            "enum-dispatch",
            f"if/elif chain over {enum_name} misses "
            f"{', '.join(sorted(missing))} and has no else",
        )


# -- rules: unseeded-random / wall-clock ------------------------------------


def _check_nondeterminism(module: _Module) -> Iterator[Finding]:
    """Both determinism rules share one import-alias scan.

    ``unseeded-random`` covers randomness sources (``random``, ``uuid``,
    ``secrets``); ``wall-clock`` covers host-time and OS-entropy reads
    (``time``, ``datetime``, ``os.urandom``).
    """
    if not module.determinism_scoped():
        return
    module_aliases: Dict[str, str] = {}
    #: bare name -> (rule, dotted origin), from ``from X import Y``
    banned_names: Dict[str, Tuple[str, str]] = {}
    #: alias -> clock-bearing class, from ``from datetime import datetime``
    datetime_classes: Dict[str, str] = {}
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name in (
                    "random", "time", "uuid", "secrets", "os", "datetime"
                ):
                    module_aliases[alias.asname or alias.name] = alias.name
        elif isinstance(node, ast.ImportFrom) and node.level == 0:
            if node.module == "random":
                for alias in node.names:
                    if alias.name not in _ALLOWED_RANDOM:
                        banned_names[alias.asname or alias.name] = (
                            "unseeded-random", f"random.{alias.name}"
                        )
            elif node.module == "time":
                for alias in node.names:
                    if alias.name in _BANNED_TIME:
                        banned_names[alias.asname or alias.name] = (
                            "wall-clock", f"time.{alias.name}"
                        )
            elif node.module in ("uuid", "secrets"):
                for alias in node.names:
                    banned_names[alias.asname or alias.name] = (
                        "unseeded-random", f"{node.module}.{alias.name}"
                    )
            elif node.module == "os":
                for alias in node.names:
                    if alias.name == "urandom":
                        banned_names[alias.asname or alias.name] = (
                            "wall-clock", "os.urandom"
                        )
            elif node.module == "datetime":
                for alias in node.names:
                    if alias.name in ("datetime", "date"):
                        datetime_classes[alias.asname or alias.name] = (
                            alias.name
                        )
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        rule: Optional[str] = None
        origin = ""
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            mod = module_aliases.get(func.value.id)
            cls = datetime_classes.get(func.value.id)
            if mod == "random" and func.attr not in _ALLOWED_RANDOM:
                rule, origin = "unseeded-random", f"random.{func.attr}"
            elif mod == "time" and func.attr in _BANNED_TIME:
                rule, origin = "wall-clock", f"time.{func.attr}"
            elif mod == "uuid" and func.attr in _BANNED_UUID:
                rule, origin = "unseeded-random", f"uuid.{func.attr}"
            elif mod == "secrets":
                rule, origin = "unseeded-random", f"secrets.{func.attr}"
            elif mod == "os" and func.attr == "urandom":
                rule, origin = "wall-clock", "os.urandom"
            elif cls is not None and func.attr in _BANNED_DATETIME:
                rule, origin = "wall-clock", f"datetime.{cls}.{func.attr}"
        elif (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Attribute)
            and isinstance(func.value.value, ast.Name)
            and module_aliases.get(func.value.value.id) == "datetime"
            and func.value.attr in ("datetime", "date")
            and func.attr in _BANNED_DATETIME
        ):
            rule = "wall-clock"
            origin = f"datetime.{func.value.attr}.{func.attr}"
        elif isinstance(func, ast.Name) and func.id in banned_names:
            rule, origin = banned_names[func.id]
        if rule is None or _suppressed(module, node.lineno, rule):
            continue
        hint = (
            "draw from a seeded random.Random instance instead"
            if rule == "unseeded-random"
            else "simulated time lives on the event queue"
        )
        yield Finding(
            str(module.path),
            node.lineno,
            node.col_offset,
            rule,
            f"call to {origin} is nondeterministic; {hint}",
        )


# -- rule: unordered-iteration ----------------------------------------------


def _unordered_reason(node: ast.expr) -> Optional[str]:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return "a set display"
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
            return f"{func.id}(...)"
        if isinstance(func, ast.Attribute) and func.attr == "invalidation_targets":
            return "invalidation_targets() (a frozenset)"
        if (
            isinstance(func, ast.Name)
            and func.id in ("list", "tuple")
            and len(node.args) == 1
        ):
            inner = _unordered_reason(node.args[0])
            if inner is not None:
                return f"{func.id}() of {inner}"
    return None


def _check_unordered_iteration(module: _Module) -> Iterator[Finding]:
    if not module.determinism_scoped():
        return
    sources: List[Tuple[int, int, ast.expr]] = []
    for node in ast.walk(module.tree):
        if isinstance(node, ast.For):
            sources.append((node.lineno, node.col_offset, node.iter))
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp,
                               ast.DictComp)):
            for gen in node.generators:
                sources.append(
                    (gen.iter.lineno, gen.iter.col_offset, gen.iter)
                )
    for lineno, col, iter_node in sources:
        reason = _unordered_reason(iter_node)
        if reason is not None and not _suppressed(
            module, lineno, "unordered-iteration"
        ):
            yield Finding(
                str(module.path),
                lineno,
                col,
                "unordered-iteration",
                f"iterating over {reason} has no deterministic order; "
                f"wrap in sorted(...)",
            )


# -- rule: unregistered-scheme ----------------------------------------------


def _scheme_findings(modules: List[_Module]) -> Iterator[Finding]:
    registry: Optional[_Module] = None
    class_sites: Dict[str, Tuple[_Module, int, int, List[str]]] = {}
    for module in modules:
        parts = Path(module.rel).parts
        if "core" not in parts:
            continue
        if Path(module.rel).name == "registry.py":
            registry = module
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                bases = [
                    b.id if isinstance(b, ast.Name) else
                    b.attr if isinstance(b, ast.Attribute) else ""
                    for b in node.bases
                ]
                class_sites[node.name] = (
                    module, node.lineno, node.col_offset, bases
                )
    if registry is None:
        return  # nothing to check against (partial lint run)
    # transitively collect DirectoryScheme descendants among core classes
    schemes: Set[str] = set()
    changed = True
    while changed:
        changed = False
        for name, (_m, _l, _c, bases) in class_sites.items():
            if name in schemes:
                continue
            if "DirectoryScheme" in bases or any(b in schemes for b in bases):
                schemes.add(name)
                changed = True
    referenced = {
        node.id
        for node in ast.walk(registry.tree)
        if isinstance(node, ast.Name)
    }
    for name in sorted(schemes):
        module, lineno, col, _bases = class_sites[name]
        if name.startswith("_"):
            continue  # private helper base, not a user-facing scheme
        if name not in referenced and not _suppressed(
            module, lineno, "unregistered-scheme"
        ):
            yield Finding(
                str(module.path),
                lineno,
                col,
                "unregistered-scheme",
                f"{name} subclasses DirectoryScheme but core/registry.py "
                f"never references it; add an alias or pattern",
            )


# -- rule: undeclared-stat --------------------------------------------------


def _declared_stats(modules: List[_Module]) -> Optional[FrozenSet[str]]:
    stats_module = next(
        (m for m in modules if Path(m.rel).name == "stats.py"
         and "machine" in Path(m.rel).parts),
        None,
    )
    if stats_module is None:
        return None
    declared: Set[str] = set()
    for node in ast.walk(stats_module.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        if node.name not in ("SimStats", "ProcessorStats"):
            continue
        for item in ast.walk(node):
            # self.x = ... inside methods (SimStats.__init__)
            if isinstance(item, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                targets = (
                    item.targets
                    if isinstance(item, ast.Assign)
                    else [item.target]
                )
                for target in targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        declared.add(target.attr)
                    elif isinstance(target, ast.Name) and isinstance(
                        item, ast.AnnAssign
                    ):
                        declared.add(target.id)  # dataclass field
            elif isinstance(item, ast.FunctionDef):
                declared.add(item.name)  # properties / helper methods
    return frozenset(declared)


def _check_undeclared_stat(
    module: _Module, declared: FrozenSet[str]
) -> Iterator[Finding]:
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.AugAssign):
            continue
        target = node.target
        if not isinstance(target, ast.Attribute):
            continue
        base = target.value
        is_stats = (isinstance(base, ast.Attribute) and base.attr == "stats") or (
            isinstance(base, ast.Name) and base.id == "stats"
        )
        if not is_stats:
            continue
        if target.attr not in declared and not _suppressed(
            module, node.lineno, "undeclared-stat"
        ):
            yield Finding(
                str(module.path),
                node.lineno,
                node.col_offset,
                "undeclared-stat",
                f"stats.{target.attr} is incremented but not declared on "
                f"SimStats/ProcessorStats",
            )


# -- rule: undeclared-obs-name ----------------------------------------------

#: tracer methods whose first positional argument is an event name
_EMIT_METHODS = frozenset({"emit", "emit_now", "emit_counter"})
#: metrics-registry factory methods keyed by metric name
_METRIC_METHODS = frozenset({"counter", "gauge", "histogram"})


def _declared_obs_names(
    modules: List[_Module],
) -> Optional[Tuple[FrozenSet[str], FrozenSet[str]]]:
    """(event names, metric names) from ``obs/registry.py``, if linted.

    Returns ``None`` when the registry module is not part of this run
    (partial lint), in which case the rule is skipped entirely.
    """
    registry = next(
        (m for m in modules if Path(m.rel).name == "registry.py"
         and "obs" in Path(m.rel).parts),
        None,
    )
    if registry is None:
        return None
    names: Dict[str, Set[str]] = {"EVENTS": set(), "METRICS": set()}
    for node in ast.walk(registry.tree):
        if isinstance(node, ast.Assign):
            targets = node.targets
            value = node.value
        elif isinstance(node, ast.AnnAssign):
            targets = [node.target]
            value = node.value
        else:
            continue
        for target in targets:
            if (
                isinstance(target, ast.Name)
                and target.id in names
                and isinstance(value, ast.Dict)
            ):
                for key in value.keys:
                    if isinstance(key, ast.Constant) and isinstance(
                        key.value, str
                    ):
                        names[target.id].add(key.value)
    return frozenset(names["EVENTS"]), frozenset(names["METRICS"])


def _literal_first_arg(node: ast.Call) -> Optional[str]:
    if node.args and isinstance(node.args[0], ast.Constant) and isinstance(
        node.args[0].value, str
    ):
        return node.args[0].value
    return None


def _is_metrics_receiver(func: ast.Attribute) -> bool:
    """``metrics.counter(...)`` or ``<x>.metrics.counter(...)``."""
    base = func.value
    if isinstance(base, ast.Name):
        return base.id == "metrics" or base.id.endswith("_metrics")
    if isinstance(base, ast.Attribute):
        return base.attr == "metrics"
    return False


def _check_undeclared_obs_name(
    module: _Module, events: FrozenSet[str], metrics: FrozenSet[str]
) -> Iterator[Finding]:
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call) or not isinstance(
            node.func, ast.Attribute
        ):
            continue
        func = node.func
        name = _literal_first_arg(node)
        if name is None:
            continue
        if func.attr in _EMIT_METHODS:
            if name not in events and not _suppressed(
                module, node.lineno, "undeclared-obs-name"
            ):
                yield Finding(
                    str(module.path),
                    node.lineno,
                    node.col_offset,
                    "undeclared-obs-name",
                    f"trace event {name!r} is not declared in "
                    f"obs/registry.py EVENTS",
                )
        elif func.attr in _METRIC_METHODS and _is_metrics_receiver(func):
            if name not in metrics and not _suppressed(
                module, node.lineno, "undeclared-obs-name"
            ):
                yield Finding(
                    str(module.path),
                    node.lineno,
                    node.col_offset,
                    "undeclared-obs-name",
                    f"metric {name!r} is not declared in "
                    f"obs/registry.py METRICS",
                )


# -- rule: span-leak ---------------------------------------------------------


def _split_span_half(node: ast.Call) -> Optional[str]:
    """``"begin"``/``"end"`` when the emit opens/closes a split span.

    Recognizes the tracer constants by name (``kind=BEGIN``, a
    ``tracer.END`` attribute, an import alias ending in BEGIN/END) and
    the raw string forms ``kind="begin"`` / ``kind="end"``.
    """
    for kw in node.keywords:
        if kw.arg != "kind":
            continue
        value = kw.value
        if isinstance(value, ast.Constant) and value.value in ("begin", "end"):
            return str(value.value)
        if isinstance(value, ast.Name) and value.id in ("BEGIN", "END"):
            return value.id.lower()
        if isinstance(value, ast.Attribute) and value.attr in ("BEGIN", "END"):
            return value.attr.lower()
    return None


def _check_span_leak(module: _Module) -> Iterator[Finding]:
    """Unpaired ``kind=BEGIN`` emits in the instrumented machine layer."""
    if "machine" not in Path(module.rel).parts:
        return
    begins: List[Tuple[str, int, int]] = []
    ends: Set[str] = set()
    for node in ast.walk(module.tree):
        if (
            not isinstance(node, ast.Call)
            or not isinstance(node.func, ast.Attribute)
            or node.func.attr not in _EMIT_METHODS
        ):
            continue
        name = _literal_first_arg(node)
        if name is None:
            continue
        half = _split_span_half(node)
        if half == "begin":
            begins.append((name, node.lineno, node.col_offset))
        elif half == "end":
            ends.add(name)
    for name, lineno, col in begins:
        if name in ends or _suppressed(module, lineno, "span-leak"):
            continue
        yield Finding(
            str(module.path),
            lineno,
            col,
            "span-leak",
            f"split span {name!r} is opened with kind=BEGIN but this "
            f"module never emits a matching kind=END close",
        )


# -- rule: unpicklable-continuation ------------------------------------------

#: event-queue scheduling methods whose callback argument is serialized
#: into checkpoints
_SCHEDULE_METHODS = frozenset({"at", "after"})


def _is_events_receiver(func: ast.Attribute) -> bool:
    """``X.at(...)`` / ``X.after(...)`` where X is an event queue.

    Matched structurally by name: ``events``, ``self.events``,
    ``self._events``, ``machine.events`` — any receiver whose terminal
    identifier mentions ``events`` or is ``queue``.  Unrelated objects
    with ``.at``/``.after`` methods are out of scope by naming
    convention, same as the metrics-receiver heuristic.
    """
    value = func.value
    name = None
    if isinstance(value, ast.Name):
        name = value.id
    elif isinstance(value, ast.Attribute):
        name = value.attr
    if name is None:
        return False
    return "events" in name or name == "queue"


def _nested_function_names(tree: ast.Module) -> Set[str]:
    """Names of functions defined inside another function (closures)."""
    nested: Set[str] = set()

    def walk(node: ast.AST, in_function: bool) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                if in_function:
                    nested.add(child.name)
                walk(child, True)
            elif isinstance(child, ast.Lambda):
                walk(child, True)
            else:
                walk(child, in_function)

    walk(tree, False)
    return nested


def _check_unpicklable_continuation(module: _Module) -> Iterator[Finding]:
    """Lambdas/closures scheduled into the event queue in ``machine/``.

    The checkpoint serializer can only encode bound methods of machine
    components (see ``CONTINUATIONS`` in ``machine/checkpoint.py``); an
    anonymous callable on the heap makes the whole machine state
    unsnapshottable.  ``functools.partial`` over a bound method is fine
    — the encoder unwraps it — so only the partial's *inner* callable
    is inspected when one appears literally.
    """
    if "machine" not in Path(module.rel).parts:
        return
    nested = _nested_function_names(module.tree)
    for node in ast.walk(module.tree):
        if (
            not isinstance(node, ast.Call)
            or not isinstance(node.func, ast.Attribute)
            or node.func.attr not in _SCHEDULE_METHODS
            or not _is_events_receiver(node.func)
            or len(node.args) < 2
        ):
            continue
        callback = node.args[1]
        # partial(f, ...) schedules f: lint the inner callable
        if (
            isinstance(callback, ast.Call)
            and isinstance(callback.func, ast.Name)
            and callback.func.id == "partial"
            and callback.args
        ):
            callback = callback.args[0]
        kind = None
        if isinstance(callback, ast.Lambda):
            kind = "a lambda"
        elif isinstance(callback, ast.Name) and callback.id in nested:
            kind = f"nested function {callback.id!r}"
        if kind is None or _suppressed(
            module, node.lineno, "unpicklable-continuation"
        ):
            continue
        yield Finding(
            str(module.path),
            node.lineno,
            node.col_offset,
            "unpicklable-continuation",
            f"{kind} scheduled into the event queue cannot be "
            f"checkpointed; use a bound method of a machine component "
            f"(registered in machine/checkpoint.py CONTINUATIONS)",
        )


# -- rule: dead-metric -------------------------------------------------------


def _metric_name_uses(
    modules: List[_Module],
) -> Tuple[Set[str], Set[str]]:
    """(exact literal names, f-string literal prefixes) passed to the
    metrics factory methods anywhere in the linted tree."""
    exact: Set[str] = set()
    prefixes: Set[str] = set()
    for module in modules:
        for node in ast.walk(module.tree):
            if (
                not isinstance(node, ast.Call)
                or not isinstance(node.func, ast.Attribute)
                or node.func.attr not in _METRIC_METHODS
                or not _is_metrics_receiver(node.func)
                or not node.args
            ):
                continue
            arg = node.args[0]
            if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                exact.add(arg.value)
            elif isinstance(arg, ast.JoinedStr) and arg.values:
                head = arg.values[0]
                if isinstance(head, ast.Constant) and isinstance(
                    head.value, str
                ):
                    prefixes.add(head.value)
                else:
                    prefixes.add("")  # fully dynamic: covers everything
    return exact, prefixes


def _dead_metric_findings(modules: List[_Module]) -> Iterator[Finding]:
    """Declared-but-never-incremented metrics, on tree-wide runs only.

    Requires both ``obs/registry.py`` (the declarations) and at least one
    ``machine/`` module (the instrumented layer) in the lint set — a
    partial run cannot see every increment site, so everything would
    read as dead.
    """
    registry = next(
        (m for m in modules if Path(m.rel).name == "registry.py"
         and "obs" in Path(m.rel).parts),
        None,
    )
    if registry is None or not any(
        "machine" in Path(m.rel).parts for m in modules
    ):
        return
    exact, prefixes = _metric_name_uses(modules)
    for node in ast.walk(registry.tree):
        if isinstance(node, ast.Assign):
            targets = node.targets
            value = node.value
        elif isinstance(node, ast.AnnAssign):
            targets = [node.target]
            value = node.value
        else:
            continue
        if not any(
            isinstance(t, ast.Name) and t.id == "METRICS" for t in targets
        ) or not isinstance(value, ast.Dict):
            continue
        for key in value.keys:
            if not (
                isinstance(key, ast.Constant) and isinstance(key.value, str)
            ):
                continue
            name = key.value
            if name in exact or any(name.startswith(p) for p in prefixes):
                continue
            if _suppressed(registry, key.lineno, "dead-metric"):
                continue
            yield Finding(
                str(registry.path),
                key.lineno,
                key.col_offset,
                "dead-metric",
                f"metric {name!r} is declared in METRICS but never "
                f"passed to .counter()/.gauge()/.histogram() anywhere",
            )


# -- driver -----------------------------------------------------------------


def _collect_files(paths: Iterable[str]) -> List[Tuple[Path, Path]]:
    """``(root, file)`` pairs; ``file`` is scoped relative to its ``root``.

    The root is the directory argument the file was found under (or the
    file's parent for file arguments), so path-scoped rules see
    ``machine/...`` / ``core/...`` prefixes regardless of how the lint
    run was invoked.
    """
    files: List[Tuple[Path, Path]] = []
    seen: Set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for file in sorted(path.rglob("*.py")):
                if file not in seen:
                    seen.add(file)
                    files.append((path, file))
        elif path.suffix == ".py" and path not in seen:
            seen.add(path)
            files.append((path.parent, path))
    return files


def _load(files: List[Tuple[Path, Path]]) -> Tuple[List[_Module], List[Finding]]:
    modules: List[_Module] = []
    errors: List[Finding] = []
    for root, file in files:
        try:
            source = file.read_text()
            tree = ast.parse(source, filename=str(file))
        except (OSError, SyntaxError) as exc:
            errors.append(
                Finding(str(file), getattr(exc, "lineno", 0) or 0, 0,
                        "parse-error", str(exc))
            )
            continue
        try:
            rel = os.path.join(root.name, str(file.relative_to(root)))
        except ValueError:  # pragma: no cover - absolute/relative mix
            rel = str(file)
        lines = source.splitlines()
        modules.append(_Module(file, rel, tree, lines, _parse_ignores(lines)))
    return modules, errors


def run_lint(paths: Iterable[str]) -> List[Finding]:
    """Lint every ``.py`` file under ``paths``; returns sorted findings."""
    modules, findings = _load(_collect_files(paths))
    declared = _declared_stats(modules)
    obs_names = _declared_obs_names(modules)
    for module in modules:
        for finding in _check_enum_dispatch(module):
            if not _suppressed(module, finding.line, finding.rule):
                findings.append(finding)
        findings.extend(_check_nondeterminism(module))
        findings.extend(_check_unordered_iteration(module))
        findings.extend(_check_span_leak(module))
        findings.extend(_check_unpicklable_continuation(module))
        if declared is not None:
            findings.extend(_check_undeclared_stat(module, declared))
        if obs_names is not None:
            findings.extend(
                _check_undeclared_obs_name(module, obs_names[0], obs_names[1])
            )
    findings.extend(_scheme_findings(modules))
    findings.extend(_dead_metric_findings(modules))
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings
