"""Closed-form Figure 2 expectations vs the Monte-Carlo estimator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import average_invalidations, exact_expected_invalidations
from repro.analysis.invalidation import _hypergeom_zero


class TestClosedForms:
    def test_full_is_identity(self):
        for k in (0, 1, 7, 30):
            assert exact_expected_invalidations("full", 32, k) == k

    def test_broadcast_step(self):
        assert exact_expected_invalidations("Dir3B", 32, 3) == 3
        assert exact_expected_invalidations("Dir3B", 32, 4) == 30
        assert exact_expected_invalidations("Dir3B", 64, 62) == 62

    def test_cv_exact_below_overflow(self):
        for k in (0, 1, 2, 3):
            assert exact_expected_invalidations("Dir3CV2", 32, k) == k

    def test_cv_saturates_to_broadcast(self):
        assert exact_expected_invalidations("Dir3CV2", 32, 30) == pytest.approx(30.0)

    def test_cv_between_full_and_broadcast(self):
        for k in range(4, 31):
            cv = exact_expected_invalidations("Dir3CV2", 32, k)
            assert k <= cv <= 30

    def test_monte_carlo_converges_to_closed_form(self):
        for name in ("Dir3CV2", "Dir3CV4"):
            for k in (4, 8, 16):
                exact = exact_expected_invalidations(name, 32, k)
                mc = average_invalidations(name, 32, k, trials=4000, seed=1)
                assert mc == pytest.approx(exact, rel=0.03), (name, k)

    def test_region_one_equals_full(self):
        for k in (4, 10, 20):
            assert exact_expected_invalidations("Dir3CV1", 32, k) == pytest.approx(k)

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError, match="no closed form"):
            exact_expected_invalidations("Dir3X", 32, 5)

    def test_sharers_bounds(self):
        with pytest.raises(ValueError):
            exact_expected_invalidations("full", 8, 7)


class TestHypergeometric:
    def test_zero_draws(self):
        assert _hypergeom_zero(10, 3, 0) == 1.0

    def test_forced_hit(self):
        # 10 candidates, 4 marked, 7 draws: must hit at least one marked
        assert _hypergeom_zero(10, 4, 7) == 0.0

    def test_single_draw(self):
        assert _hypergeom_zero(10, 3, 1) == pytest.approx(0.7)

    @settings(max_examples=60)
    @given(
        M=st.integers(2, 40),
        g=st.integers(1, 10),
        k=st.integers(0, 40),
    )
    def test_is_probability(self, M, g, k):
        if g > M or k > M:
            return
        p = _hypergeom_zero(M, g, k)
        assert 0.0 <= p <= 1.0


@settings(max_examples=15, deadline=None)
@given(
    k=st.integers(4, 20),
    r=st.sampled_from([2, 4, 8]),
)
def test_cv_expectation_monotone_in_region_size(k, r):
    """Bigger regions can only cover more nodes in expectation."""
    small = exact_expected_invalidations(f"Dir3CV{r}", 32, k)
    big = exact_expected_invalidations(f"Dir3CV{2 * r}", 32, k)
    assert big >= small - 1e-9
