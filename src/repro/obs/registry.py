"""Central event/metric name registry — the observability vocabulary.

Every trace event a hook point can :meth:`~repro.obs.tracer.Tracer.emit`
and every metric instrument the machine layer can create is declared
here, with a one-line description.  The registry serves three purposes:

* **documentation** — ``docs/observability.md`` is generated from (and
  cross-checked against) these tables;
* **runtime validation** — a strict :class:`~repro.obs.tracer.Tracer`
  and :class:`~repro.obs.metrics.MetricsRegistry` reject undeclared
  names, so a typo'd hook fails loudly in tests instead of producing a
  silently separate series;
* **static validation** — ``repro verify lint`` flags any
  ``emit("...")`` / ``metrics.histogram("...")`` call whose literal name
  is missing here (rule ``undeclared-obs-name``), mirroring the
  ``undeclared-stat`` rule for :class:`~repro.machine.stats.SimStats`.

Versioning: :data:`TRACE_SCHEMA` stamps exported trace files,
:data:`METRICS_SCHEMA` stamps the ``metrics`` block inside
``SimStats.to_dict()``.  Bump them when the shapes (not the vocabulary)
change; adding a new declared name is backward compatible.
"""

from __future__ import annotations

from typing import Dict

#: version of the exported trace-file shape (JSONL and Chrome exporters)
TRACE_SCHEMA = 1

#: version of the ``metrics`` block in ``SimStats.to_dict()``
METRICS_SCHEMA = 1

#: trace event name -> one-line description (the event taxonomy)
EVENTS: Dict[str, str] = {
    # transaction lifecycle (component "system")
    "txn.read": "read miss: directory request issue -> completion (span)",
    "txn.write": "write miss/upgrade: request issue -> completion (span)",
    "txn.retry": "faulted request reissued after backoff (instant)",
    "wb.issue": "dirty eviction put a writeback on the wire (instant)",
    "hint.issue": "clean eviction sent a replacement hint (instant)",
    # directory controller (component "directory")
    "dir.service": "home controller service: arrival -> finish (span)",
    "dir.inval_round": "one invalidation event, tagged by cause (instant)",
    "dir.sparse_evict": "sparse-directory entry replacement (instant)",
    "dir.occupancy": "live directory entries at this home (counter)",
    # interconnect (component "network")
    "net.msg": "one inter-cluster message: inject -> deliver (span)",
    "net.fault": "fault layer perturbed a delivery (instant)",
    # caches (component "cache")
    "cache.evict": "L2 victim pushed out by a fill (instant)",
    "cache.inval": "cache copy killed by an invalidation (instant)",
    # processors (component "proc")
    "proc.stall": "processor stalled on the memory system (span)",
    "proc.sync": "processor waited on a lock/barrier (span)",
    # checkpointing (component "ckpt") — harness activity, not simulation
    # state: these are excluded from captured tracer snapshots so a
    # checkpoint's payload is independent of how many saves preceded it
    # (wall clocks are banned in machine code, so these are instants,
    # not spans)
    "ckpt.save": "machine snapshot captured and written (instant)",
    "ckpt.restore": "machine state restored from a snapshot (instant)",
    # sweep runner (component "sweep")
    "sweep.point": "one sweep grid point completed: simulated or cache-loaded (span)",
    "sweep.retry": "sweep point attempt rescheduled after a worker death, "
                   "timeout, or injected failure (instant)",
    "sweep.worker": "one worker process's telemetry lane opened in a merged "
                    "sweep trace (instant)",
}

#: metric instrument name -> one-line description (the metrics glossary)
METRICS: Dict[str, str] = {
    # histograms (log2-bucketed, cycles unless noted)
    "msg_latency": "per-message inject -> deliver latency",
    "txn_latency.read": "read request issue -> completion latency",
    "txn_latency.write": "write request issue -> completion latency",
    "dir_occupancy": "live directory entries sampled per transaction",
    "invals_per_event.write": "invalidations sent per write event",
    "invals_per_event.nb_evict": "invalidations per Dir_iNB pointer eviction",
    "invals_per_event.sparse_repl": "invalidations per sparse replacement",
    "retry_wait": "backoff delay per fault-forced retry",
    "stall_cycles": "per-reference processor stall time",
    "sync_cycles": "per-operation lock/barrier wait time",
    # counters
    "retries": "fault-forced request reissues observed",
    "ckpt_saves": "machine snapshots captured by this process",
    "ckpt_bytes": "total bytes of checkpoint data written",
    "ckpt_resumes": "runs continued from a restored snapshot",
    "sweep_cache_hits": "sweep grid points served from the result cache",
    "sweep_cache_misses": "sweep grid points that required simulation",
    "sweep_retries": "sweep point attempts retried after worker death, "
                     "timeout, or failure",
    "sweep_timeouts": "sweep point attempts reaped by the per-point "
                      "wall-clock timeout",
    "sweep_quarantined": "sweep points quarantined under keep-going after "
                         "exhausting retries",
    # gauges
    "dir_occupancy_peak": "max live directory entries seen at any home",
}


def is_declared_event(name: str) -> bool:
    """True when ``name`` is in the event taxonomy."""
    return name in EVENTS


def is_declared_metric(name: str) -> bool:
    """True when ``name`` is in the metrics glossary."""
    return name in METRICS
