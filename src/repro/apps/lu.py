"""LU: parallel dense L-U factorization (the paper's numeric workload).

Column-interleaved right-looking factorization, the classic SPLASH-era
formulation: columns are dealt round-robin to processors; at step ``k``
the owner of column ``k`` normalizes it, a barrier makes it visible, and
every processor updates its own columns ``j > k`` using column ``k``.

The coherence-relevant pattern (§6.2): *"In LU each matrix column is read
by all processors just after the pivot step"* — a read-all/write-one
cycle on the pivot column that

* forces ``Dir_iNB`` into a continuous stream of pointer-overflow
  invalidations and re-reads, and
* leaves enough sharers at sparse-directory replacements that ``Dir_iB``
  broadcasts while ``Dir_iCV_r`` sends a few region invalidations
  (the Figure 11 size-factor-1 gap).

The matrix is stored column-major so a column is contiguous (two 8-byte
elements per 16-byte block).
"""

from __future__ import annotations

from typing import Iterator

from repro.trace.event import Barrier, Read, TraceOp, Work, Write
from repro.trace.workload import Workload


class LUWorkload(Workload):
    """L-U factorization of a dense ``matrix_n`` x ``matrix_n`` matrix."""

    name = "LU"

    def __init__(
        self,
        num_processors: int,
        matrix_n: int = 64,
        *,
        update_work_cycles: int = 4,
        block_bytes: int = 16,
        seed: int = 0,
    ) -> None:
        if matrix_n < 2:
            raise ValueError("matrix_n must be >= 2")
        self.n = matrix_n
        self.update_work_cycles = update_work_cycles
        super().__init__(num_processors, block_bytes=block_bytes, seed=seed)

    def build(self) -> None:
        n = self.n
        self.matrix = self.space.alloc("matrix", n * n, 8)
        # pivot-ready flags: the owner posts flags[k] after normalizing and
        # every other processor reads it before updating.  Two 8-byte flags
        # share a 16-byte block, so posting flags[k] invalidates all the
        # processors still caching flags[k-1] — the classic false-sharing
        # component of LU's (small) invalidation traffic.
        self.flags = self.space.alloc("pivot_flags", n, 8)
        # one barrier per factorization step phase
        self.step_barriers = [
            (self.new_barrier(), self.new_barrier()) for _ in range(n - 1)
        ]

    # column-major addressing: element (i, j) = column j, row i
    def _addr(self, i: int, j: int) -> int:
        return self.matrix.addr(j * self.n + i)

    def owner(self, column: int) -> int:
        """Processor owning a matrix column (round-robin interleave)."""
        return column % self.num_processors

    def stream(self, proc_id: int) -> Iterator[TraceOp]:
        n = self.n
        p = self.num_processors
        work = self.update_work_cycles
        for k in range(n - 1):
            pivot_barrier, update_barrier = self.step_barriers[k]
            if self.owner(k) == proc_id:
                # normalize the pivot column: A[i,k] /= A[k,k]
                yield Read(self._addr(k, k))
                for i in range(k + 1, n):
                    yield Read(self._addr(i, k))
                    yield Work(work)
                    yield Write(self._addr(i, k))
                yield Write(self.flags.addr(k))  # post "column k ready"
            yield Barrier(pivot_barrier)
            if self.owner(k) != proc_id:
                yield Read(self.flags.addr(k))  # consume the ready flag
            # update owned trailing columns with the (now shared) pivot col
            for j in range(k + 1, n):
                if self.owner(j) != proc_id:
                    continue
                yield Read(self._addr(k, j))  # multiplier row element
                for i in range(k + 1, n):
                    yield Read(self._addr(i, k))  # pivot column: read by ALL
                    yield Read(self._addr(i, j))
                    yield Work(work)
                    yield Write(self._addr(i, j))
            yield Barrier(update_barrier)
