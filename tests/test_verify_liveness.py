"""Liveness: healthy schemes have no fair starvation/livelock cycles,
and planted progress bugs yield lasso counterexamples.

The mutants here live at the model-semantics level (a home that loses a
request, a home that NAKs forever) rather than the scheme level — losing
a message is a *controller* bug, invisible to any directory entry, which
is exactly why safety checking alone cannot find it.
"""

import pytest

from repro.core.registry import make_scheme
from repro.verify import model
from repro.verify.liveness import Lasso, check_liveness
from repro.verify.model import MSG_READ, MSG_WRITE, ModelConfig


def _cfg(name="full", nodes=3, **kw):
    return ModelConfig(
        scheme=make_scheme(name, nodes), num_nodes=nodes, **kw
    )


@pytest.mark.parametrize("name", ["full", "Dir1B", "Dir2CV2"])
def test_healthy_scheme_has_no_liveness_violation(name):
    result = check_liveness(_cfg(name))
    assert result.ok, result.violation and result.violation.format()
    assert result.states > 0 and result.transitions > 0
    assert result.violation is None


def test_lost_read_is_a_request_completion_violation(monkeypatch):
    """A home that consumes a read without granting it starves the reader."""
    real = model._deliver

    def lossy(ns, cfg, kind, l, node):
        if kind == MSG_READ:
            return []  # message consumed, cache never granted
        return real(ns, cfg, kind, l, node)

    monkeypatch.setattr(model, "_deliver", lossy)
    result = check_liveness(_cfg())
    assert result.violation is not None, "lost transaction not detected"
    assert result.violation.property == "request-completion"
    assert "never completes" in result.violation.message


def test_nak_requeue_forever_is_a_liveness_violation(monkeypatch):
    """A home that re-queues node 0's writes forever livelocks them."""
    real = model._deliver

    def nak(ns, cfg, kind, l, node):
        if kind == MSG_WRITE and node == 0:
            ns.msgs.append((MSG_WRITE, l, node))  # NAK: back on the wire
            return []
        return real(ns, cfg, kind, l, node)

    monkeypatch.setattr(model, "_deliver", nak)
    result = check_liveness(_cfg())
    assert result.violation is not None, "NAK livelock not detected"
    assert result.violation.property in (
        "request-completion", "livelock-freedom"
    )


def test_lasso_format_shows_stem_and_cycle(monkeypatch):
    real = model._deliver
    monkeypatch.setattr(
        model, "_deliver",
        lambda ns, cfg, kind, l, node: (
            [] if kind == MSG_READ else real(ns, cfg, kind, l, node)
        ),
    )
    lasso = check_liveness(_cfg()).violation
    text = lasso.format()
    assert "cycle (repeats forever)" in text
    assert "violated: request-completion" in text


def test_lasso_replay_actions_unroll_the_cycle_twice():
    lasso = Lasso(
        stem=(("read", 0, 0),),
        cycle=(("deliver", "read", 0, 0), ("read", 0, 0)),
        property="request-completion",
        message="m",
    )
    assert lasso.replay_actions() == lasso.stem + lasso.cycle + lasso.cycle


def test_truncated_graph_is_not_reported_ok():
    result = check_liveness(_cfg(max_states=10))
    assert result.truncated
    assert not result.ok


def test_liveness_counts_sccs():
    result = check_liveness(_cfg(nodes=2))
    # a protocol with any request/response loop has cyclic SCCs to examine
    assert result.sccs > 0
    assert result.fair_sccs <= result.sccs
