"""End-to-end ``repro obs`` trace / summarize / diff on a tiny workload."""

import json

import pytest

from repro.obs.cli import main
from repro.obs.export import read_trace
from repro.obs.registry import EVENTS


def _trace_args(out, *, fmt="chrome", seed=0, metrics_out=None):
    args = [
        "trace", "--app", "mp3d", "--procs", "4", "--scale", "0.25",
        "--scheme", "Dir2CV2", "--seed", str(seed),
        "--out", str(out), "--format", fmt,
    ]
    if metrics_out is not None:
        args += ["--metrics-out", str(metrics_out)]
    return args


@pytest.fixture(scope="module")
def traced(tmp_path_factory):
    """One traced run shared by the read-only assertions below."""
    tmp = tmp_path_factory.mktemp("obs_cli")
    trace = tmp / "trace.json"
    metrics = tmp / "metrics.json"
    rc = main(_trace_args(trace, metrics_out=metrics))
    assert rc == 0
    return trace, metrics


class TestTrace:
    def test_chrome_trace_written_and_loadable(self, traced):
        trace, _ = traced
        events = read_trace(trace)
        assert events, "traced run produced no events"
        assert all(ev.name in EVENTS for ev in events)

    def test_metrics_out_is_versioned_stats(self, traced):
        _, metrics = traced
        data = json.loads(metrics.read_text())
        assert data["schema"] == 2
        assert "metrics" in data
        assert data["metrics"]["schema"] == 1
        assert data["metrics"]["histograms"]  # something was recorded

    def test_jsonl_format(self, tmp_path):
        out = tmp_path / "trace.jsonl"
        assert main(_trace_args(out, fmt="jsonl")) == 0
        assert read_trace(out)

    def test_deterministic_per_seed(self, tmp_path):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        assert main(_trace_args(a, fmt="jsonl", seed=3)) == 0
        assert main(_trace_args(b, fmt="jsonl", seed=3)) == 0
        # identical modulo the header (which is identical too)
        assert a.read_text() == b.read_text()


class TestSummarize:
    def test_summarize_strict_passes_on_real_trace(self, traced, capsys):
        trace, _ = traced
        assert main(["summarize", str(trace), "--strict"]) == 0
        out = capsys.readouterr().out
        assert "events over" in out
        assert "every event name is declared" in out

    def test_summarize_strict_fails_on_unknown_name(self, tmp_path, capsys):
        from repro.obs.export import write_jsonl
        from repro.obs.tracer import TraceEvent

        path = write_jsonl(
            [TraceEvent("rogue.event", 1.0)], tmp_path / "t.jsonl"
        )
        assert main(["summarize", str(path), "--strict"]) == 1
        assert "rogue.event" in capsys.readouterr().err

    def test_summarize_missing_file_exits_2(self, tmp_path):
        assert main(["summarize", str(tmp_path / "nope.json")]) == 2


class TestDiff:
    def test_diff_two_seeds(self, traced, tmp_path, capsys):
        _, metrics_a = traced
        trace_b = tmp_path / "b_trace.json"
        metrics_b = tmp_path / "b_metrics.json"
        assert main(_trace_args(trace_b, seed=1, metrics_out=metrics_b)) == 0
        capsys.readouterr()  # drop the trace output
        assert main(["diff", str(metrics_a), str(metrics_b)]) == 0
        out = capsys.readouterr().out
        assert "scalar stats" in out
        assert "histogram msg_latency" in out

    def test_diff_identical_files(self, traced, capsys):
        _, metrics = traced
        assert main(["diff", str(metrics), str(metrics)]) == 0
        out = capsys.readouterr().out
        assert "(identical)" in out

    def test_diff_missing_file_exits_2(self, tmp_path):
        assert main(["diff", str(tmp_path / "a.json"),
                     str(tmp_path / "b.json")]) == 2
