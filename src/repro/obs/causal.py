"""Causal transaction analytics: reconstruct why a miss took that long.

Every remote miss the machine traces carries a ``txn_id`` through all
of its span args (``txn.read``/``txn.write``, ``net.msg``,
``dir.service``, ``dir.inval_round``, ``cache.inval``, ``net.fault``,
``txn.retry``), and the directory records an *exact* service-latency
decomposition in the ``dir.service`` span's ``phases`` arg at execute
time.  This module stitches those back together from any trace file:

* ``net_request`` — issue to acceptance at the home (wire legs plus
  fault retries and their backoff);
* ``dir_queue`` — waiting at the home for the block to go un-busy and
  for a controller issue slot (directory occupancy);
* the directory's recorded service phases — ``sparse_recall``,
  ``dir_lookup``, ``net_forward``, ``remote_cache``, ``memory``,
  ``inval_fanout``, ``net_reply``.

The phase values of a chain sum to the transaction's ``txn.*`` span
duration by construction (guarded by ``tests/test_obs_causal.py``), so
"Dir4CV4 is 1.3x slower on MP3D" decomposes into *which* phase paid —
e.g. invalidation fanout, as §6.2 predicts for coarse vectors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.obs.metrics import Log2Histogram
from repro.obs.tracer import TraceEvent

#: canonical phase ordering for reports (request-to-grant chain order)
PHASE_ORDER: Tuple[str, ...] = (
    "net_request",
    "dir_queue",
    "sparse_recall",
    "dir_lookup",
    "net_forward",
    "remote_cache",
    "memory",
    "inval_fanout",
    "net_reply",
)

#: tolerance (cycles) for the phases-sum-to-latency identity
RESIDUAL_TOLERANCE = 1e-6


@dataclass
class TxnChain:
    """One reconstructed transaction: request -> ... -> grant."""

    txn_id: int
    kind: str  # "read" or "write"
    block: int
    requester: int
    home: int
    t_issue: float
    latency: float
    phases: Dict[str, float]
    invals: int = 0  # invalidation messages this txn fanned out
    cache_invals: int = 0  # cache copies it killed (any cluster)
    retries: int = 0  # fault-layer reissues before acceptance
    faults: int = 0  # fault-layer perturbations observed

    @property
    def residual(self) -> float:
        """``latency - sum(phases)`` — ~0 for a complete chain."""
        return self.latency - sum(self.phases.values())

    def ordered_phases(self) -> List[Tuple[str, float]]:
        """Phases in chain order (unknown names trail, sorted)."""
        known = [(p, self.phases[p]) for p in PHASE_ORDER if p in self.phases]
        extra = sorted(
            (p, v) for p, v in self.phases.items() if p not in PHASE_ORDER
        )
        return known + extra


@dataclass
class ChainSet:
    """Reconstruction result: complete chains plus bookkeeping."""

    chains: List[TxnChain]
    #: txn ids seen on some event but missing their txn.* or dir.service
    #: span (usually ring-buffer drops in a wrapped trace)
    incomplete: int = 0
    #: txn.read/txn.write spans with no txn_id arg (pre-causal trace)
    untagged: int = 0
    histograms: Dict[str, Log2Histogram] = field(default_factory=dict)

    def phase_totals(self) -> Dict[str, float]:
        """Total cycles per phase across all chains, chain order."""
        totals: Dict[str, float] = {}
        for chain in self.chains:
            for phase, cycles in chain.phases.items():
                totals[phase] = totals.get(phase, 0.0) + cycles
        ordered = [(p, totals[p]) for p in PHASE_ORDER if p in totals]
        ordered += sorted(
            (p, v) for p, v in totals.items() if p not in PHASE_ORDER
        )
        return dict(ordered)

    def top_slowest(self, k: int) -> List[TxnChain]:
        """The ``k`` highest-latency chains, slowest first."""
        return sorted(
            self.chains, key=lambda c: (-c.latency, c.txn_id)
        )[:max(0, k)]


def _int_arg(args: Optional[Dict[str, object]], key: str) -> Optional[int]:
    if not args:
        return None
    value = args.get(key)
    return value if isinstance(value, int) else None


#: correlation key: (grid-point index, txn_id).  Single-run traces have
#: no "point" arg, so the first element is None there; merged sweep
#: traces qualify every causal event with its point index because
#: txn_ids restart at 1 in each point.
_TxnKey = Tuple[Optional[int], int]


def reconstruct(events: Iterable[TraceEvent]) -> ChainSet:
    """Rebuild per-transaction causal chains from trace events.

    Works on any trace (JSONL or Chrome, merged or single-run): events
    are correlated by their ``txn_id`` args, scoped by the grid-point
    index on merged sweep traces.  Transactions whose ``txn.*`` or
    ``dir.service`` span fell out of the ring buffer are counted in
    ``incomplete`` rather than reported half-built.
    """
    txn_spans: Dict[_TxnKey, TraceEvent] = {}
    services: Dict[_TxnKey, TraceEvent] = {}
    invals: Dict[_TxnKey, int] = {}
    cache_invals: Dict[_TxnKey, int] = {}
    retries: Dict[_TxnKey, int] = {}
    faults: Dict[_TxnKey, int] = {}
    seen: Set[_TxnKey] = set()
    untagged = 0
    for ev in events:
        txn_id = _int_arg(ev.args, "txn_id")
        key = (_int_arg(ev.args, "point"), txn_id or 0)
        if ev.name in ("txn.read", "txn.write"):
            if txn_id is None:
                untagged += 1
                continue
            seen.add(key)
            txn_spans[key] = ev
        elif txn_id is None:
            continue
        elif ev.name == "dir.service":
            seen.add(key)
            services[key] = ev
        elif ev.name == "dir.inval_round":
            seen.add(key)
            n = _int_arg(ev.args, "invals")
            invals[key] = invals.get(key, 0) + (n or 0)
        elif ev.name == "cache.inval":
            seen.add(key)
            cache_invals[key] = cache_invals.get(key, 0) + 1
        elif ev.name == "txn.retry":
            seen.add(key)
            retries[key] = retries.get(key, 0) + 1
        elif ev.name == "net.fault":
            seen.add(key)
            faults[key] = faults.get(key, 0) + 1

    chains: List[TxnChain] = []
    for key, span in txn_spans.items():
        txn_id = key[1]
        svc = services.get(key)
        if svc is None or span.dur is None:
            continue
        svc_args = svc.args or {}
        t_start = svc_args.get("t_start")
        if not isinstance(t_start, (int, float)):
            continue
        phases: Dict[str, float] = {}
        net_request = svc.ts - span.ts
        if net_request:
            phases["net_request"] = net_request
        dir_queue = float(t_start) - svc.ts
        if dir_queue:
            phases["dir_queue"] = dir_queue
        recorded = svc_args.get("phases")
        if isinstance(recorded, dict):
            for name, cycles in recorded.items():
                if isinstance(cycles, (int, float)):
                    phases[str(name)] = float(cycles)
        chains.append(
            TxnChain(
                txn_id=txn_id,
                kind="write" if span.name == "txn.write" else "read",
                block=_int_arg(span.args, "block") or 0,
                requester=_int_arg(span.args, "requester") or 0,
                home=span.tid,
                t_issue=span.ts,
                latency=float(span.dur),
                phases=phases,
                invals=invals.get(key, 0),
                cache_invals=cache_invals.get(key, 0),
                retries=retries.get(key, 0),
                faults=faults.get(key, 0),
            )
        )
    chains.sort(key=lambda c: (c.t_issue, c.txn_id))
    result = ChainSet(
        chains=chains,
        incomplete=len(seen) - len(chains),
        untagged=untagged,
    )
    for chain in chains:
        for phase, cycles in chain.phases.items():
            hist = result.histograms.get(phase)
            if hist is None:
                hist = result.histograms[phase] = Log2Histogram()
            hist.observe(cycles)
    return result


def verify_chain_sums(
    chain_set: ChainSet, *, tolerance: float = RESIDUAL_TOLERANCE
) -> List[TxnChain]:
    """Chains whose phases do NOT sum to their span latency (bug scan)."""
    return [c for c in chain_set.chains if abs(c.residual) > tolerance]
