"""Fairness-constrained liveness checking over the protocol model.

Safety (:mod:`repro.verify.explorer`) asks "is a bad state reachable?";
liveness asks "does every request eventually complete, and do transient
states always drain?".  A liveness violation is an infinite *fair*
execution that starves a node or never quiesces, and in a finite state
graph every infinite execution is a lasso: a stem from the initial state
into a strongly connected component (SCC) plus a cycle inside it.

Fairness
--------
We check **weak fairness**: an action continuously enabled must
eventually fire.  On the SCC quotient this has an exact decision: a fair
infinite run exists inside SCC ``S`` iff every action enabled in *all*
states of ``S`` labels at least one edge internal to ``S`` (a grand tour
of ``S``'s edges fires each of them infinitely often; conversely an
everywhere-enabled action with no internal edge is continuously enabled
but never taken on any run confined to ``S``).

Properties
----------
``request-completion``
    no fair cycle on which some node stays INVALID on a line while its
    read/write request for that line is pending somewhere on the cycle.
    Decided exactly by restricting the graph to the states where that
    node is INVALID on that line and examining the SCCs of the
    restriction.  In the healthy model a pending request can neither be
    cancelled nor delivered without granting (the grant leaves the
    restricted subgraph by changing the cache state), so its delivery is
    enabled in every state of such an SCC and fairness forces an
    internal delivery edge that cannot exist — the check fails only when
    the protocol can consume a request without granting it (a lost
    transaction) or re-queue it forever (a livelocking NAK loop).
``livelock-freedom``
    no fair cycle on which one specific in-flight message stays pending
    throughout — every transient eventually drains.  Same subgraph
    construction, restricted to the states carrying that message.  (A
    fair cycle whose states merely all have *some* message pending is
    not a livelock: an open system under continuous load never
    quiesces, yet every individual message is serviced promptly.)

The checker runs on the **concrete** state graph (symmetry disabled):
the starvation predicate names a specific node, which a symmetry
quotient erases.  Keep it to small configurations (N <= 4); safety at
scale is the explorer's job.

Counterexamples compile to :class:`~repro.trace.scripted.ScriptedWorkload`
replays exactly like safety violations — the stem's issue actions
followed by two unrollings of the cycle's.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.verify.explorer import StateKey, describe_action, encode_state
from repro.verify.model import (
    INVALID,
    MSG_READ,
    MSG_WRITE,
    Action,
    ModelConfig,
    ModelState,
    apply_action,
    enabled_actions,
    initial_state,
)


@dataclass(frozen=True)
class Lasso:
    """A fair infinite execution violating a liveness property."""

    stem: Tuple[Action, ...]
    cycle: Tuple[Action, ...]
    property: str  #: "request-completion" | "livelock-freedom"
    message: str

    def format(self) -> str:
        """Numbered stem + cycle rendering, like a safety counterexample."""
        lines = []
        for i, action in enumerate(self.stem, start=1):
            lines.append(f"  {i:2d}. {describe_action(action)}")
        lines.append("  -- cycle (repeats forever) --")
        offset = len(self.stem)
        for i, action in enumerate(self.cycle, start=offset + 1):
            lines.append(f"  {i:2d}. {describe_action(action)}")
        lines.append(f"violated: {self.property} — {self.message}")
        return "\n".join(lines)

    def replay_actions(self) -> Tuple[Action, ...]:
        """Stem plus two cycle unrollings, for scripted-workload replay."""
        return self.stem + self.cycle + self.cycle


@dataclass
class LivenessResult:
    """Outcome of one liveness check."""

    scheme: str
    num_nodes: int
    states: int = 0
    transitions: int = 0
    sccs: int = 0  #: non-trivial (cycle-carrying) SCCs examined
    fair_sccs: int = 0
    truncated: bool = False
    violation: Optional[Lasso] = None
    blocks: Tuple[int, ...] = field(default_factory=tuple)

    @property
    def ok(self) -> bool:
        return self.violation is None and not self.truncated


class _Graph:
    """Concrete bounded state graph: states, labeled edges, enabled sets."""

    def __init__(self) -> None:
        self.states: List[ModelState] = []
        self.enabled: List[List[Action]] = []
        self.edges: List[List[Tuple[Action, int]]] = []
        self.parents: List[Optional[Tuple[int, Action]]] = []
        self.index: Dict[StateKey, int] = {}


def _build_graph(cfg: ModelConfig, limit: int) -> Tuple[_Graph, bool]:
    """BFS the concrete (identity-keyed) state graph up to ``limit``."""
    identity = tuple(range(cfg.num_nodes))
    graph = _Graph()
    root = initial_state(cfg)
    graph.index[encode_state(root, cfg, identity)] = 0
    graph.states.append(root)
    graph.parents.append(None)
    queue: deque = deque([0])
    truncated = False
    while queue:
        u = queue.popleft()
        state = graph.states[u]
        actions = enabled_actions(state, cfg)
        while len(graph.enabled) <= u:
            graph.enabled.append([])
            graph.edges.append([])
        graph.enabled[u] = actions
        for action in actions:
            successor, _ = apply_action(state, action, cfg)
            key = encode_state(successor, cfg, identity)
            v = graph.index.get(key)
            if v is None:
                if len(graph.states) >= limit:
                    truncated = True
                    continue
                v = len(graph.states)
                graph.index[key] = v
                graph.states.append(successor)
                graph.parents.append((u, action))
                queue.append(v)
            graph.edges[u].append((action, v))
    while len(graph.enabled) < len(graph.states):  # pragma: no cover
        graph.enabled.append([])
        graph.edges.append([])
    return graph, truncated


def _sccs(graph: _Graph, members: Set[int]) -> List[List[int]]:
    """Tarjan's algorithm over the subgraph induced by ``members``.

    Iterative — state graphs overflow Python's recursion limit.
    """
    index: Dict[int, int] = {}
    low: Dict[int, int] = {}
    on_stack: Set[int] = set()
    stack: List[int] = []
    out: List[List[int]] = []
    counter = 0
    for start in sorted(members):
        if start in index:
            continue
        work: List[Tuple[int, int]] = [(start, 0)]
        while work:
            u, ei = work.pop()
            if ei == 0:
                index[u] = low[u] = counter
                counter += 1
                stack.append(u)
                on_stack.add(u)
            recurse = False
            while ei < len(graph.edges[u]):
                v = graph.edges[u][ei][1]
                ei += 1
                if v not in members:
                    continue
                if v not in index:
                    work.append((u, ei))
                    work.append((v, 0))
                    recurse = True
                    break
                if v in on_stack:
                    low[u] = min(low[u], index[v])
            if recurse:
                continue
            if low[u] == index[u]:
                comp = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    comp.append(w)
                    if w == u:
                        break
                out.append(comp)
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[u])
    return out


def _is_fair(graph: _Graph, comp: List[int], members: Set[int]) -> bool:
    """True iff a weakly fair infinite run can stay inside ``comp``.

    Fairness constrains **deliveries only**: the memory system must
    eventually service a continuously pending message, but processors
    are never obligated to issue requests or evict lines — issue
    actions are environment moves and may idle forever.
    """
    always_enabled: Optional[Set[Action]] = None
    for u in comp:
        acts = {a for a in graph.enabled[u] if a[0] == "deliver"}
        always_enabled = (
            acts if always_enabled is None else always_enabled & acts
        )
        if not always_enabled:
            return True  # no delivery is continuously enabled
    assert always_enabled is not None
    internal = {
        action
        for u in comp
        for action, v in graph.edges[u]
        if v in members
    }
    return always_enabled <= internal


def _has_cycle(graph: _Graph, comp: List[int], members: Set[int]) -> bool:
    return len(comp) > 1 or any(
        v == comp[0] for _a, v in graph.edges[comp[0]] if v in members
    )


def _stem_to(graph: _Graph, target: int) -> Tuple[Action, ...]:
    actions: List[Action] = []
    cursor: Optional[int] = target
    while cursor is not None:
        link = graph.parents[cursor]
        if link is None:
            break
        parent, action = link
        actions.append(action)
        cursor = parent
    actions.reverse()
    return tuple(actions)


def _cycle_in(
    graph: _Graph, start: int, members: Set[int]
) -> Tuple[Action, ...]:
    """Shortest non-empty action cycle from ``start`` inside the SCC."""
    best: Optional[List[Action]] = None
    # one BFS per first edge keeps the cycle through `start` minimal
    for first_action, v in graph.edges[start]:
        if v not in members:
            continue
        if v == start:
            return (first_action,)
        prev: Dict[int, Tuple[int, Action]] = {v: (start, first_action)}
        queue = deque([v])
        found = False
        while queue and not found:
            u = queue.popleft()
            for action, w in graph.edges[u]:
                if w == start:
                    path = [action]
                    cursor = u
                    while cursor != start:
                        parent, act = prev[cursor]
                        path.append(act)
                        cursor = parent
                    path.reverse()
                    if best is None or len(path) < len(best):
                        best = path
                    found = True
                    break
                if w in members and w not in prev:
                    prev[w] = (u, action)
                    queue.append(w)
    assert best is not None, "SCC member without an internal cycle"
    return tuple(best)


def _fair_cyclic_sccs(
    graph: _Graph, members: Set[int], result: "LivenessResult"
) -> List[Tuple[List[int], Set[int]]]:
    """Cycle-carrying, weakly fair SCCs of the induced subgraph."""
    out = []
    for comp in _sccs(graph, members):
        comp_set = set(comp)
        if not _has_cycle(graph, comp, comp_set):
            continue
        result.sccs += 1
        if _is_fair(graph, comp, comp_set):
            result.fair_sccs += 1
            out.append((comp, comp_set))
    return out


def _lasso(graph: _Graph, comp: List[int], members: Set[int],
           prop: str, message: str) -> Lasso:
    entry = min(comp)  # BFS order: lowest index has the shortest stem
    return Lasso(
        _stem_to(graph, entry), _cycle_in(graph, entry, members),
        prop, message,
    )


def check_liveness(cfg: ModelConfig) -> LivenessResult:
    """Search the bounded concrete graph for fair starvation/livelock
    cycles."""
    result = LivenessResult(
        scheme=cfg.scheme.name, num_nodes=cfg.num_nodes, blocks=cfg.blocks
    )
    graph, truncated = _build_graph(cfg, cfg.max_states)
    result.states = len(graph.states)
    result.transitions = sum(len(e) for e in graph.edges)
    result.truncated = truncated

    # request-completion: per (node, line), SCCs of the invalid-restricted
    # subgraph with that node's request pending somewhere
    for p in range(cfg.num_nodes):
        for l in range(len(cfg.blocks)):
            members = {
                u for u, state in enumerate(graph.states)
                if state.caches[p][l] == INVALID
            }
            for comp, comp_set in _fair_cyclic_sccs(graph, members, result):
                pending = any(
                    (kind, l, p) in graph.states[u].msgs
                    for u in comp
                    for kind in (MSG_READ, MSG_WRITE)
                )
                if not pending:
                    continue
                result.violation = _lasso(
                    graph, comp, comp_set, "request-completion",
                    f"node {p} stays INVALID on line {l} around a fair "
                    f"cycle while its request is pending — the request "
                    f"never completes",
                )
                return result

    # livelock-freedom: per distinct in-flight message, SCCs of the
    # subgraph where that message stays pending
    messages = sorted({
        msg for state in graph.states for msg in state.msgs
    })
    for msg in messages:
        members = {
            u for u, state in enumerate(graph.states)
            if msg in state.msgs
        }
        for comp, comp_set in _fair_cyclic_sccs(graph, members, result):
            kind, l, node = msg
            result.violation = _lasso(
                graph, comp, comp_set, "livelock-freedom",
                f"{kind} message from node {node} on line {l} stays "
                f"pending around a fair cycle — the transient never "
                f"drains",
            )
            return result
    return result
