"""Content-addressed result cache for sweeps and benchmarks.

Re-running a figure script mostly re-simulates grid points whose inputs
have not changed.  This module makes that rerun cheap: each completed
grid point is persisted under a key that is a stable hash of

* the **machine configuration** — every :class:`MachineConfig` field,
  via :meth:`~repro.machine.config.MachineConfig.cache_key_fields`;
* the **workload identity** — class, name, and every scalar constructor
  state attribute (processors, seeds, problem sizes, shared bytes);
* a **simulator code fingerprint** — a digest over every ``.py`` file in
  the installed ``repro`` package, so *any* source change invalidates
  *every* entry (sound, if blunt: simulation outputs can depend on any
  module);
* the run flags that affect execution (currently ``check``).

Entries are JSON files holding a lossless
:meth:`~repro.machine.stats.SimStats.to_state` snapshot.  Loading
validates the schema and the embedded key; any mismatch, parse error, or
malformed payload counts as a *corrupt* entry and falls back to
simulation — a damaged cache can cost time, never correctness.

Writes are atomic (tmp file + ``os.replace``), so concurrent writers —
e.g. two parallel sweep shards finishing the same point from different
processes — cannot interleave partial JSON.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from pathlib import Path
from typing import Any, Dict, Mapping, Optional

from repro.machine.config import MachineConfig
from repro.machine.stats import SimStats
from repro.trace.workload import Workload

#: version of the on-disk cache-entry format; bump on shape changes
#: (old entries then miss by schema, not by key)
CACHE_SCHEMA = 1

#: environment variable consulted for a default cache directory
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: age (seconds) after which an orphaned atomic-write temp file — left
#: behind by a writer that was killed between ``mkstemp`` and
#: ``os.replace`` — is garbage-collected on cache startup.  The TTL
#: keeps a *live* concurrent writer's in-flight temp file safe.
ORPHAN_TTL = 3600.0

_SCALARS = (str, int, float, bool, type(None))

_code_fingerprint: Optional[str] = None


def code_fingerprint() -> str:
    """Digest of every ``.py`` source file in the ``repro`` package.

    Computed once per process and memoized: the sources cannot change
    under a running simulator in any scenario the cache supports.
    """
    global _code_fingerprint
    if _code_fingerprint is None:
        import repro

        root = Path(repro.__file__).resolve().parent
        digest = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            digest.update(str(path.relative_to(root)).encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _code_fingerprint = digest.hexdigest()
    return _code_fingerprint


def _scalarize(value: Any) -> Any:
    """JSON-safe copy of scalars and (nested) scalar sequences; None otherwise."""
    if isinstance(value, _SCALARS):
        return value
    if isinstance(value, (list, tuple)):
        items = [_scalarize(v) for v in value]
        return items if all(v is not None for v in items) else None
    return None


def workload_fingerprint(workload: Workload) -> Dict[str, Any]:
    """Stable identity of a built workload for cache keying.

    Captures the class (module + qualname), the declared name, and every
    scalar instance attribute — which includes ``num_processors``,
    ``block_bytes``, ``seed``, and the subclass's problem-size
    parameters — plus the shared footprint actually allocated.  Code
    changes inside :meth:`~repro.trace.workload.Workload.stream` are
    covered by :func:`code_fingerprint`, not here.
    """
    attrs = {
        name: scalar
        for name, value in sorted(vars(workload).items())
        if (scalar := _scalarize(value)) is not None or value is None
    }
    return {
        "class": f"{type(workload).__module__}.{type(workload).__qualname__}",
        "name": workload.name,
        "attrs": attrs,
        "shared_bytes": workload.shared_bytes,
    }


def point_key(
    config: MachineConfig,
    workload: Workload,
    *,
    check: bool = False,
    extra: Optional[Mapping[str, Any]] = None,
) -> str:
    """The content hash addressing one (config, workload, flags) result.

    ``extra`` lets callers fold additional run parameters into the key
    (kept sorted; must be JSON-safe).
    """
    envelope = {
        "cache_schema": CACHE_SCHEMA,
        "code": code_fingerprint(),
        "config": config.cache_key_fields(),
        "workload": workload_fingerprint(workload),
        "check": bool(check),
        "extra": dict(sorted(extra.items())) if extra else {},
    }
    blob = json.dumps(envelope, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def default_cache_dir() -> Optional[Path]:
    """The directory named by ``$REPRO_CACHE_DIR``, or None when unset."""
    value = os.environ.get(CACHE_DIR_ENV)
    return Path(value) if value else None


class ResultCache:
    """Filesystem-backed store of simulation results, addressed by content.

    Tracks ``hits`` / ``misses`` / ``stores`` / ``corrupt`` counters so
    callers (and tests) can assert, e.g., that a warm rerun executed
    zero simulations.
    """

    def __init__(self, root: Path | str, *, sweep_orphans: bool = True) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.corrupt = 0
        self.orphans = 0
        if sweep_orphans:
            self.sweep_orphans()

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def sweep_orphans(self, ttl: float = ORPHAN_TTL) -> int:
        """Remove atomic-write temp files older than ``ttl`` seconds.

        A writer SIGKILLed between ``mkstemp`` and ``os.replace`` leaks
        a ``*.tmp`` file that no rerun would ever clean up.  This
        covers both cached-result temps (``<key>.json.tmp``) and the
        checkpoint temps sweep workers write under
        ``<root>/checkpoints/`` (``pointNNNNN.ckpt.tmp`` — a worker
        killed mid-snapshot leaks one; the committed ``.ckpt`` next to
        it stays, it is the resume point).  Run on startup; files
        younger than the TTL are left alone because a concurrent live
        writer may still be about to rename them.  Returns the number
        of files removed (also accumulated on the ``orphans`` counter).
        """
        if not self.root.is_dir():
            return 0
        cutoff = time.time() - ttl
        removed = 0
        for tmp in self.root.rglob("*.tmp"):
            try:
                if tmp.stat().st_mtime < cutoff:
                    tmp.unlink()
                    removed += 1
            except OSError:
                continue  # raced with a concurrent sweep/writer
        self.orphans += removed
        return removed

    def get(self, key: str) -> Optional[SimStats]:
        """The cached stats for ``key``, or None on miss/corruption."""
        path = self._path(key)
        try:
            record = json.loads(path.read_text())
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, ValueError):
            self.corrupt += 1
            self.misses += 1
            return None
        try:
            if record["schema"] != CACHE_SCHEMA or record["key"] != key:
                raise ValueError("cache entry schema/key mismatch")
            stats = SimStats.from_state(record["stats"])
        except Exception:
            self.corrupt += 1
            self.misses += 1
            return None
        self.hits += 1
        return stats

    def put(self, key: str, stats: SimStats) -> Path:
        """Persist one result atomically; returns the entry path."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        record = {
            "schema": CACHE_SCHEMA,
            "key": key,
            "stats": stats.to_state(),
        }
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(record, fh, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.stores += 1
        return path

    def counters(self) -> Dict[str, int]:
        """Flat hit/miss/store/corrupt/orphan counts for reports and tests."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "corrupt": self.corrupt,
            "orphans": self.orphans,
        }

    def summary(self) -> str:
        """One-line human summary (printed by the benchmark runner)."""
        c = self.counters()
        return (
            f"cache {self.root}: {c['hits']} hits, {c['misses']} misses, "
            f"{c['stores']} stored"
            + (f", {c['corrupt']} corrupt" if c["corrupt"] else "")
            + (f", {c['orphans']} orphans swept" if c["orphans"] else "")
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<ResultCache {self.root} {self.counters()}>"
