"""Perf-regression gate: compare fresh throughput against the baseline.

The CI ``perf`` job runs the quick throughput bench and compares each
scheme's ``events_per_s`` against the committed ``BENCH_throughput.json``
with a relative tolerance (default ±15% — the bench takes best-of-N
repeats, so runner noise is small and an algorithmic slowdown in the
event kernel or directory hot paths shows up immediately).

Usage::

    python benchmarks/check_perf.py BASELINE.json FRESH.json \
        --tolerance 0.15 --history perf_history.jsonl --history-window 5

Exit status:

* ``0`` — every scheme present in both files is within tolerance;
* ``1`` — at least one scheme regressed (or vanished from the fresh
  run): the per-scheme deltas are listed in the failure summary;
* ``2`` — the baseline is unusable (file missing/unreadable/empty, or a
  measured scheme has no baseline entry).  Distinct from a regression so
  CI can tell "refresh the baseline" apart from "the code got slower".

``--history`` appends the fresh per-scheme numbers as one JSON line per
run (a JSONL file CI persists as an artifact) and *also* compares each
scheme against the median of its last ``--history-window`` recorded
runs.  The median damps single-run outliers, so a slow creep that stays
inside the baseline tolerance per-step is still caught once it drifts
from the recent trend.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
from pathlib import Path
from typing import Dict, List

#: baseline is unusable — refresh it rather than hunting a regression
EXIT_MISSING_BASELINE = 2
#: at least one scheme is slower than tolerance allows
EXIT_REGRESSION = 1


def _per_scheme(path: Path, *, role: str) -> Dict[str, float]:
    """Map scheme -> events_per_s from a BENCH_throughput.json envelope."""
    if not path.is_file():
        print(f"{role} {path}: file not found")
        raise SystemExit(
            EXIT_MISSING_BASELINE if role == "baseline" else EXIT_REGRESSION
        )
    try:
        data = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        print(f"{role} {path}: unreadable ({exc})")
        raise SystemExit(
            EXIT_MISSING_BASELINE if role == "baseline" else EXIT_REGRESSION
        )
    records = data.get("results", [])
    out: Dict[str, float] = {}
    for record in records:
        out[str(record["scheme"])] = float(record["events_per_s"])
    if not out:
        print(f"{role} {path}: no per-scheme results found")
        raise SystemExit(
            EXIT_MISSING_BASELINE if role == "baseline" else EXIT_REGRESSION
        )
    return out


def _load_history(path: Path) -> List[Dict[str, float]]:
    """Previous runs from the JSONL history file (oldest first)."""
    if not path.is_file():
        return []
    runs: List[Dict[str, float]] = []
    for line in path.read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except ValueError:
            continue  # a truncated line from a killed run is not fatal
        if isinstance(record, dict) and record.get("schemes"):
            runs.append({
                str(k): float(v) for k, v in record["schemes"].items()
            })
    return runs


def _append_history(path: Path, fresh: Dict[str, float]) -> None:
    """Record this run's numbers as one JSON line."""
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("a") as fh:
        fh.write(json.dumps({"schemes": fresh}, sort_keys=True) + "\n")


def main(argv=None) -> int:
    """Compare the two telemetry files; print a verdict per scheme."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", type=Path)
    parser.add_argument("fresh", type=Path)
    parser.add_argument("--tolerance", type=float, default=0.15,
                        help="allowed relative deviation (0.15 = ±15%%)")
    parser.add_argument("--history", type=Path, default=None, metavar="JSONL",
                        help="append this run and compare against the "
                             "median of the recorded trend")
    parser.add_argument("--history-window", type=int, default=5, metavar="N",
                        help="trend window: median of the last N runs")
    parser.add_argument("--history-min-runs", type=int, default=3,
                        metavar="M",
                        help="skip the trend check until M runs are "
                             "recorded (a short history is all noise)")
    args = parser.parse_args(argv)
    base = _per_scheme(args.baseline, role="baseline")
    fresh = _per_scheme(args.fresh, role="fresh")

    missing_baseline = sorted(set(fresh) - set(base))
    if missing_baseline:
        for scheme in missing_baseline:
            print(f"FAIL {scheme:>8}: missing from baseline — refresh "
                  f"{args.baseline}")
        return EXIT_MISSING_BASELINE

    failures: List[str] = []
    for scheme in sorted(base):
        if scheme not in fresh:
            print(f"FAIL {scheme:>8}: missing from fresh run")
            failures.append(f"{scheme}: missing from fresh run")
            continue
        ratio = fresh[scheme] / base[scheme] if base[scheme] else float("inf")
        drift = ratio - 1.0
        ok = abs(drift) <= args.tolerance
        mark = "ok  " if ok else "FAIL"
        print(f"{mark} {scheme:>8}: baseline={base[scheme]:>10,.0f} ev/s  "
              f"fresh={fresh[scheme]:>10,.0f} ev/s  drift={drift:+.1%} "
              f"(tolerance ±{args.tolerance:.0%})")
        if not ok:
            failures.append(
                f"{scheme}: {base[scheme]:,.0f} -> {fresh[scheme]:,.0f} "
                f"ev/s ({drift:+.1%})"
            )

    if args.history is not None:
        runs = _load_history(args.history)
        window = runs[-max(1, args.history_window):]
        if len(runs) >= max(1, args.history_min_runs):
            for scheme in sorted(base):
                if scheme not in fresh:
                    continue
                samples = [r[scheme] for r in window if scheme in r]
                if not samples:
                    continue
                median = statistics.median(samples)
                drift = (fresh[scheme] / median - 1.0) if median else 0.0
                ok = abs(drift) <= args.tolerance
                mark = "ok  " if ok else "FAIL"
                print(f"{mark} {scheme:>8}: trend median of last "
                      f"{len(samples)}={median:>10,.0f} ev/s  "
                      f"fresh={fresh[scheme]:>10,.0f} ev/s  "
                      f"drift={drift:+.1%}")
                if not ok:
                    failures.append(
                        f"{scheme}: drifted {drift:+.1%} from trend "
                        f"median {median:,.0f} ev/s"
                    )
        else:
            print(f"trend check skipped: {len(runs)} run(s) recorded, "
                  f"need {args.history_min_runs}")
        _append_history(args.history, fresh)
        print(f"appended run to {args.history} "
              f"({len(runs) + 1} total)")

    if failures:
        print("\nper-scheme failures:")
        for line in failures:
            print(f"  {line}")
        return EXIT_REGRESSION
    return 0


if __name__ == "__main__":
    sys.exit(main())
