"""Causal transaction analytics: chains, the phase-sum identity, CLI.

The load-bearing guarantee: for every reconstructed transaction the
phase breakdown sums exactly (within RESIDUAL_TOLERANCE) to the
``txn.*`` span duration, on every scheme the simulator supports.
"""

import json

import pytest

from repro.apps import MP3DWorkload, UniformRandomWorkload
from repro.machine.config import MachineConfig
from repro.machine.system import run_workload
from repro.obs.causal import (
    PHASE_ORDER,
    ChainSet,
    TxnChain,
    reconstruct,
    verify_chain_sums,
)
from repro.obs.tracer import TraceEvent, Tracer


def _trace(scheme="Dir2B", workload=None, capacity=1 << 20):
    tracer = Tracer(capacity)
    config = MachineConfig(num_clusters=4, scheme=scheme)
    workload = workload or MP3DWorkload(4, num_particles=16, steps=1, seed=0)
    run_workload(config, workload, obs=tracer)
    return tracer.events()


def _synthetic_chain(txn_id=7, *, t_issue=100.0, svc_ts=110.0,
                     t_start=115.0, phases=None, dur=None):
    phases = phases if phases is not None else {"memory": 20.0,
                                                "net_reply": 5.0}
    if dur is None:
        dur = (svc_ts - t_issue) + (t_start - svc_ts) + sum(phases.values())
    return [
        TraceEvent("txn.read", t_issue, kind="span", dur=dur, comp="cache",
                   tid=2, args={"txn_id": txn_id, "block": 33,
                                "requester": 1}),
        TraceEvent("dir.service", svc_ts, kind="span", dur=dur - 10.0,
                   comp="directory", tid=2,
                   args={"txn_id": txn_id, "t_start": t_start,
                         "phases": phases}),
    ]


class TestReconstructSynthetic:
    def test_single_chain_fields(self):
        cs = reconstruct(_synthetic_chain())
        assert cs.incomplete == 0 and cs.untagged == 0
        (chain,) = cs.chains
        assert chain.txn_id == 7
        assert chain.kind == "read"
        assert chain.block == 33
        assert chain.requester == 1
        assert chain.home == 2  # the span's tid lane
        assert chain.t_issue == 100.0
        assert chain.phases["net_request"] == 10.0
        assert chain.phases["dir_queue"] == 5.0
        assert chain.phases["memory"] == 20.0
        assert abs(chain.residual) < 1e-9

    def test_zero_cycle_phases_are_omitted(self):
        # local-home request: no wire leg, no queueing
        cs = reconstruct(
            _synthetic_chain(t_issue=100.0, svc_ts=100.0, t_start=100.0)
        )
        (chain,) = cs.chains
        assert "net_request" not in chain.phases
        assert "dir_queue" not in chain.phases

    def test_side_events_accumulate_onto_the_chain(self):
        events = _synthetic_chain(txn_id=9)
        extra = [
            TraceEvent("dir.inval_round", 120.0, comp="directory",
                       args={"txn_id": 9, "invals": 3}),
            TraceEvent("cache.inval", 121.0, comp="cache",
                       args={"txn_id": 9}),
            TraceEvent("cache.inval", 122.0, comp="cache",
                       args={"txn_id": 9}),
            TraceEvent("txn.retry", 101.0, comp="network",
                       args={"txn_id": 9}),
            TraceEvent("net.fault", 101.0, comp="network",
                       args={"txn_id": 9}),
        ]
        (chain,) = reconstruct(events + extra).chains
        assert chain.invals == 3
        assert chain.cache_invals == 2
        assert chain.retries == 1
        assert chain.faults == 1

    def test_dropped_span_counts_as_incomplete(self):
        # dir.service survived the ring; its txn.* span did not
        events = _synthetic_chain(txn_id=5)[1:]
        cs = reconstruct(events)
        assert cs.chains == []
        assert cs.incomplete == 1

    def test_untagged_span_counts_as_untagged(self):
        ev = TraceEvent("txn.read", 0.0, kind="span", dur=30.0, comp="cache")
        cs = reconstruct([ev])
        assert cs.chains == []
        assert cs.untagged == 1

    def test_top_slowest_orders_by_latency_then_id(self):
        events = (
            _synthetic_chain(txn_id=1, phases={"memory": 50.0})
            + _synthetic_chain(txn_id=2, phases={"memory": 90.0})
            + _synthetic_chain(txn_id=3, phases={"memory": 90.0})
        )
        cs = reconstruct(events)
        assert [c.txn_id for c in cs.top_slowest(2)] == [2, 3]

    def test_verify_flags_a_broken_identity(self):
        good = reconstruct(_synthetic_chain())
        assert verify_chain_sums(good) == []
        bad = reconstruct(_synthetic_chain(dur=999.0))
        assert [c.txn_id for c in verify_chain_sums(bad)] == [7]


class TestRealTraces:
    @pytest.mark.parametrize(
        "scheme", ["full", "Dir2B", "Dir2NB", "Dir2CV2", "DirLL"]
    )
    def test_phase_sums_are_exact_on_every_scheme(self, scheme):
        cs = reconstruct(_trace(scheme=scheme))
        assert cs.chains, "traced run produced no transactions"
        assert cs.incomplete == 0
        assert cs.untagged == 0
        assert verify_chain_sums(cs) == []
        assert set(cs.phase_totals()) <= set(PHASE_ORDER)

    def test_write_transactions_record_their_invalidations(self):
        workload = UniformRandomWorkload(
            4, refs_per_proc=120, heap_blocks=8, write_fraction=0.6
        )
        cs = reconstruct(_trace(scheme="full", workload=workload))
        writes = [c for c in cs.chains if c.kind == "write"]
        assert writes
        assert any(c.invals > 0 for c in writes)
        fanned = [c for c in writes if c.invals]
        assert any("inval_fanout" in c.phases for c in fanned)

    def test_wrapped_trace_degrades_gracefully(self):
        full = reconstruct(_trace())
        wrapped = reconstruct(_trace(capacity=64))
        assert verify_chain_sums(wrapped) == []  # survivors still exact
        assert len(wrapped.chains) < len(full.chains)  # drops, not garbage

    def test_histograms_cover_each_phase(self):
        cs = reconstruct(_trace())
        totals = cs.phase_totals()
        assert set(cs.histograms) == set(totals)
        for phase, hist in cs.histograms.items():
            d = hist.to_dict()
            assert d["count"] >= 1


class TestReportFormatting:
    def test_format_critical_path_sections(self):
        from repro.analysis.report import format_critical_path

        cs = reconstruct(_trace())
        text = format_critical_path(cs, top=3)
        assert "transactions" in text
        assert "net_request" in text or "memory" in text
        assert "slowest transactions:" in text
        assert text.count("  #") >= 1  # per-transaction chain lines

    def test_format_handles_empty_chain_set(self):
        from repro.analysis.report import format_critical_path

        text = format_critical_path(ChainSet(chains=[]))
        assert "no causal chains" in text


class TestCli:
    def _write_trace(self, tmp_path, compress=False):
        from repro.obs.export import write_jsonl

        path = tmp_path / ("t.jsonl.gz" if compress else "t.jsonl")
        write_jsonl(_trace(), path, compress=compress)
        return path

    def test_critical_path_command(self, tmp_path, capsys):
        from repro.obs.cli import main

        path = self._write_trace(tmp_path)
        assert main(["critical-path", str(path), "--top", "2"]) == 0
        out = capsys.readouterr().out
        assert "slowest" in out

    def test_critical_path_reads_gzipped_traces(self, tmp_path, capsys):
        from repro.obs.cli import main

        path = self._write_trace(tmp_path, compress=True)
        assert main(["critical-path", str(path)]) == 0
        assert "slowest" in capsys.readouterr().out

    def test_critical_path_fails_on_chainless_trace(self, tmp_path):
        from repro.obs.cli import main
        from repro.obs.export import write_jsonl

        path = tmp_path / "empty.jsonl"
        write_jsonl(
            [TraceEvent("sweep.point", 0.0, comp="sweep")], path
        )
        assert main(["critical-path", str(path)]) == 1


class TestChainDataclass:
    def test_ordered_phases_follow_chain_order(self):
        chain = TxnChain(
            txn_id=1, kind="read", block=0, requester=0, home=0,
            t_issue=0.0, latency=10.0,
            phases={"net_reply": 2.0, "zz_custom": 1.0, "net_request": 7.0},
        )
        assert chain.ordered_phases() == [
            ("net_request", 7.0), ("net_reply", 2.0), ("zz_custom", 1.0)
        ]

    def test_round_trips_through_json(self):
        (chain,) = reconstruct(_synthetic_chain()).chains
        blob = json.dumps(chain.phases, sort_keys=True)
        assert json.loads(blob) == chain.phases


class TestMergedTraces:
    """Causal reconstruction works on sweep-merged traces too."""

    def _merged_chain_set(self, tmp_path, jobs):
        from repro.analysis.sweeps import PointSpec, run_points
        from repro.obs.aggregate import SweepAggregator
        from repro.obs.export import read_trace

        base = MachineConfig(num_clusters=4)
        factory = lambda: MP3DWorkload(4, num_particles=16, steps=1,
                                       seed=0)  # noqa: E731
        specs = [
            PointSpec(config=base.with_(scheme=s), workload_factory=factory,
                      label=f"scheme={s}")
            for s in ("full", "Dir2B")
        ]
        agg = SweepAggregator()
        run_points(specs, jobs=jobs, aggregate=agg)
        paths = agg.write(tmp_path / f"jobs{jobs}")
        return reconstruct(read_trace(paths["trace"]))

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_point_scoped_txn_ids_never_collide(self, tmp_path, jobs):
        per_point = len(reconstruct(_trace(
            scheme="full",
            workload=MP3DWorkload(4, num_particles=16, steps=1, seed=0),
        )).chains)
        cs = self._merged_chain_set(tmp_path, jobs)
        # both points contribute all their chains — txn_id 1 of point 0
        # and txn_id 1 of point 1 are distinct transactions
        assert len(cs.chains) == 2 * per_point
        assert cs.incomplete == 0 and cs.untagged == 0

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_phase_identity_survives_lane_offsets(self, tmp_path, jobs):
        # two points on one lane are laid out end-to-end: ts shifts by
        # the lane base, and so must in-args timestamps like t_start
        cs = self._merged_chain_set(tmp_path, jobs)
        assert verify_chain_sums(cs) == []
