"""The analytic overhead model must reproduce the paper's arithmetic."""

import pytest

from repro.core import (
    CoarseVectorScheme,
    FullBitVectorScheme,
    LimitedPointerBroadcastScheme,
    full_vector_overhead,
    limited_pointer_overhead,
    savings_factor,
    table1_configurations,
)
from repro.core.overhead import directory_overhead, tag_bits_for_sparsity


class TestPaperReferencePoints:
    def test_dash_prototype_is_13_3_percent(self):
        # §2: 17 bits per 16-byte block -> 13.3%
        ov = full_vector_overhead(16, 16)
        assert ov.bits_per_entry == 17
        assert ov.overhead_percent == pytest.approx(13.28, abs=0.05)

    def test_sparsity_64_savings_factor_54(self):
        # §5: Dir32 full vector, sparsity 64: 39 bits per 64 blocks
        # versus 33 bits per block -> factor ~54
        scheme = FullBitVectorScheme(32)
        sparse = directory_overhead(scheme, 16, sparsity=64)
        assert sparse.bits_per_entry == 39  # 32 + 1 dirty + 6 tag
        factor = savings_factor(scheme, 16, 64)
        assert factor == pytest.approx(54.15, abs=0.1)

    def test_sparse_saves_one_to_two_orders_of_magnitude(self):
        scheme = FullBitVectorScheme(32)
        assert 10 < savings_factor(scheme, 16, 16) < 100
        assert savings_factor(scheme, 16, 64) > 50


class TestTable1:
    def test_three_rows(self):
        rows = table1_configurations()
        assert [r.processors for r in rows] == [64, 256, 1024]
        assert [r.clusters for r in rows] == [16, 64, 256]

    def test_memory_scales_with_processors(self):
        rows = table1_configurations()
        for r in rows:
            assert r.main_memory_mbytes == 16 * r.processors
            assert r.cache_mbytes == r.processors // 4

    def test_overheads_all_near_13_percent(self):
        # the point of Table 1: overhead stays ~13% as the machine scales
        for r in table1_configurations():
            assert 12.0 < r.overhead_percent < 14.5, r

    def test_row3_uses_coarse_vector(self):
        rows = table1_configurations()
        assert "CV" in rows[2].scheme_label


class TestModelInternals:
    def test_tag_bits(self):
        assert tag_bits_for_sparsity(1) == 0
        assert tag_bits_for_sparsity(4) == 2
        assert tag_bits_for_sparsity(64) == 6

    def test_limited_pointer_grows_logarithmically(self):
        ov32 = limited_pointer_overhead(32, 3, 16)
        ov1024 = limited_pointer_overhead(1024, 3, 16)
        # 3*5+1+1 = 17 vs 3*10+1+1 = 32: log growth, not linear
        assert ov1024.bits_per_entry < 2 * ov32.bits_per_entry

    def test_full_vector_grows_linearly(self):
        assert full_vector_overhead(64, 16).bits_per_entry == 65
        assert full_vector_overhead(128, 16).bits_per_entry == 129

    def test_sparsity_reduces_bits_per_block(self):
        scheme = FullBitVectorScheme(64)
        dense = directory_overhead(scheme, 16, sparsity=1)
        sparse = directory_overhead(scheme, 16, sparsity=8)
        assert sparse.bits_per_block < dense.bits_per_block / 7

    def test_coarse_vector_overhead_below_full_vector(self):
        # at 256 nodes, Dir8CV4 must be much cheaper than Dir256
        cv = directory_overhead(CoarseVectorScheme(256, 8, 4), 16)
        full = directory_overhead(FullBitVectorScheme(256), 16)
        assert cv.bits_per_entry < full.bits_per_entry / 3

    def test_broadcast_scheme_uses_same_order_as_cv(self):
        b = directory_overhead(LimitedPointerBroadcastScheme(256, 8), 16)
        cv = directory_overhead(CoarseVectorScheme(256, 8, 4), 16)
        assert abs(b.bits_per_entry - cv.bits_per_entry) <= 2

    def test_invalid_inputs(self):
        scheme = FullBitVectorScheme(8)
        with pytest.raises(ValueError):
            directory_overhead(scheme, 0)
        with pytest.raises(ValueError):
            directory_overhead(scheme, 16, sparsity=0.5)
