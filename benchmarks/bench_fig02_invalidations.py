"""Figure 2: average invalidation messages vs. number of sharers.

Reproduces both panels with the paper's Monte-Carlo methodology
(random sharer sets, §4.1):

* Figure 2a — 32 processors: Dir_N (full vector), Dir3B, Dir3CV2;
* Figure 2b — 64 processors: adds Dir3X and uses Dir3CV4.

Expected shape (asserted): the full vector is the identity line; Dir3B
jumps to N-2 as soon as the 3 pointers overflow; Dir3X is only
marginally better than broadcast; the coarse vector tracks the full
vector with a small region-granularity offset.

Run standalone:  python benchmarks/bench_fig02_invalidations.py
Run via pytest:  pytest benchmarks/bench_fig02_invalidations.py --benchmark-only -s
"""

try:
    from benchmarks.common import bench_entry, save_results, stats_summary
except ImportError:  # standalone script
    from common import bench_entry, save_results, stats_summary
from repro.analysis import ascii_chart, figure2_series, format_series

TRIALS = 300

FIG2A_SCHEMES = ["full", "Dir3B", "Dir3CV2"]
FIG2B_SCHEMES = ["full", "Dir3B", "Dir3X", "Dir3CV4"]


def compute_fig2a():
    return figure2_series(FIG2A_SCHEMES, 32, max_sharers=30, trials=TRIALS)


def compute_fig2b():
    return figure2_series(FIG2B_SCHEMES, 64, max_sharers=62, trials=TRIALS)


def check_fig2a(series) -> None:
    full, b, cv = (series[s] for s in FIG2A_SCHEMES)
    for k in range(31):
        assert full[k] == k, "full vector must be the identity line"
        assert full[k] <= cv[k] <= b[k], "CV must sit between full and B"
    assert all(b[k] == 30 for k in range(4, 31)), "B plateaus at N-2"
    assert cv[6] < b[6] * 0.5, "CV clearly beats broadcast at 6 sharers"


def check_fig2b(series) -> None:
    full, b, x, cv = (series[s] for s in FIG2B_SCHEMES)
    for k in range(4, 63):
        assert b[k] == 62, "B plateaus at N-2"
        assert full[k] <= cv[k] <= b[k]
        assert x[k] <= b[k] + 1e-9
    # "its behaviour is almost as bad as that of the broadcast scheme"
    assert x[10] > 0.8 * b[10]
    # ... while CV4 covers at most 10 regions x 4 nodes ≈ half the machine
    assert cv[10] < 0.55 * x[10]


def report() -> None:
    a = compute_fig2a()
    check_fig2a(a)
    save_results("fig02a", a)
    print("=== Figure 2a: 32 processors ===")
    print(ascii_chart(a, x_label="sharers", y_label="invalidations"))
    print()
    print(format_series(a, x_label="sharers"))
    b = compute_fig2b()
    check_fig2b(b)
    save_results("fig02b", b)
    print("\n=== Figure 2b: 64 processors ===")
    print(ascii_chart(b, x_label="sharers", y_label="invalidations"))
    print()
    print(format_series(b, x_label="sharers"))


def test_fig2a(benchmark):
    series = benchmark.pedantic(compute_fig2a, rounds=1, iterations=1)
    check_fig2a(series)
    print()
    print(format_series(series, x_label="sharers"))


def test_fig2b(benchmark):
    series = benchmark.pedantic(compute_fig2b, rounds=1, iterations=1)
    check_fig2b(series)
    print()
    print(format_series(series, x_label="sharers"))


if __name__ == "__main__":
    # Monte-Carlo model, not machine simulation: the shared flags are
    # accepted for interface uniformity but --jobs has nothing to shard.
    raise SystemExit(bench_entry(report, description=__doc__))
