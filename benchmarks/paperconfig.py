"""Shared configuration for the paper-reproduction benchmarks.

One place defines the simulated machine and the application instances so
every table/figure benchmark runs the same experiment the paper describes
(§5): 32 processors in 32 single-processor clusters, 16-byte blocks,
DASH-prototype latencies.

Problem sizes are scaled down from the paper's (its Tango runs used
3-9 million references; our Python substrate targets a few hundred
thousand per run) but preserve the structural parameters that drive the
results: 32-way sharing of LU's pivot column and DWF's read-only arrays,
MP3D's 1-2-sharer locality, LocusRoute's ~4-processors-per-region
sharing, and — for the sparse-directory studies — the §6.3 methodology of
shrinking the caches to keep the dataset:cache ratio of a full-sized
problem (we use ratios in the 2-16 range versus the paper's up-to-64;
EXPERIMENTS.md discusses the effect).
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.apps import DWFWorkload, LocusRouteWorkload, LUWorkload, MP3DWorkload
from repro.machine import MachineConfig
from repro.trace.workload import Workload

#: the paper's simulated machine size (§5)
PROCESSORS = 32

#: schemes compared in §6.2, paper order (full vector first = baseline)
SCHEMES_6_2 = ["full", "Dir3CV2", "Dir3B", "Dir3NB"]

#: schemes compared in the sparse studies (§6.3.1)
SCHEMES_6_3 = ["full", "Dir3CV2", "Dir3B"]


def machine(scheme: str = "full", **overrides) -> MachineConfig:
    """The §5 machine with a given directory scheme."""
    cfg = MachineConfig(num_clusters=PROCESSORS, procs_per_cluster=1,
                        scheme=scheme)
    return cfg.with_(**overrides) if overrides else cfg


# -- application instances (Table 2 / Figures 3-10) --------------------------

def lu(seed: int = 0) -> LUWorkload:
    return LUWorkload(PROCESSORS, matrix_n=64, seed=seed)


def dwf(seed: int = 0) -> DWFWorkload:
    return DWFWorkload(
        PROCESSORS, pattern_len=64, library_len=192, col_block=16, seed=seed
    )


def mp3d(seed: int = 0) -> MP3DWorkload:
    return MP3DWorkload(
        PROCESSORS, num_particles=768, space_cells=96, steps=4, seed=seed
    )


def locusroute(seed: int = 0) -> LocusRouteWorkload:
    return LocusRouteWorkload(
        PROCESSORS,
        grid_cols=160,
        grid_rows=16,
        num_regions=8,
        wires_per_region=28,
        seed=seed,
    )


APPS: Dict[str, Callable[[], Workload]] = {
    "LU": lu,
    "DWF": dwf,
    "MP3D": mp3d,
    "LocusRoute": locusroute,
}


# -- sparse-study instances (Figures 11-14) -----------------------------------
#
# The §6.3 methodology: scale the processor caches so the dataset:cache
# ratio matches a full-blown problem, then size the sparse directory as a
# multiple (the *size factor*) of the total cache blocks.

SPARSE_L1_BYTES = 128
SPARSE_L2_BYTES = 256  # 16 blocks/processor -> 512 blocks machine-wide
# dataset:cache ratios: LU(96x96) ≈ 9, DWF(64x512) ≈ 33 — §6.3's scaled
# caches (the paper's DWF example used ratio 64)
SPARSE_ASSOC = 4
SPARSE_POLICY = "random"


def lu_sparse(seed: int = 0) -> LUWorkload:
    # 64x64 doubles = 32 KB shared -> dataset ≈ 4x total scaled cache
    return LUWorkload(PROCESSORS, matrix_n=64, seed=seed)


def dwf_sparse(seed: int = 0) -> DWFWorkload:
    # 64x384 cells = 192 KB matrix -> dataset ≈ 25x total scaled cache
    return DWFWorkload(
        PROCESSORS, pattern_len=64, library_len=384, col_block=32, seed=seed
    )


def sparse_machine(
    scheme: str, size_factor: float | None, *, policy: str = SPARSE_POLICY,
    assoc: int = SPARSE_ASSOC, **overrides
) -> MachineConfig:
    cfg = MachineConfig(
        num_clusters=PROCESSORS,
        scheme=scheme,
        l1_bytes=SPARSE_L1_BYTES,
        l2_bytes=SPARSE_L2_BYTES,
        sparse_size_factor=size_factor,
        sparse_assoc=assoc,
        sparse_policy=policy,
    )
    return cfg.with_(**overrides) if overrides else cfg
