"""Perf-telemetry pipeline: schema-versioned ``BENCH_*.json`` artifacts.

Performance benchmarks (simulator throughput today; any future hot-path
study) route their numbers through :func:`write_bench` so every run
lands as ``BENCH_<name>.json`` at the repository root in one shape::

    {
      "schema": 1,
      "bench": "throughput",
      "quick": false,
      "host": {"platform": "...", "python": "...", "cpus": 8},
      "peak_rss_bytes": 123456789,
      "results": { ... benchmark-specific ... }
    }

CI uploads the file as an artifact, so subsequent PRs have a regression
baseline to diff against (``repro obs diff`` understands the metrics
blocks inside).  The payload is wall-clock data and therefore *not*
deterministic — BENCH files are artifacts, never test fixtures.
"""

from __future__ import annotations

import json
import os
import platform
import resource
import sys
from pathlib import Path
from typing import Any, Dict, Mapping, Optional, Union

#: version of the BENCH_*.json envelope
BENCH_SCHEMA = 1


def peak_rss_bytes() -> int:
    """Peak resident set size of this process, in bytes.

    ``ru_maxrss`` is kilobytes on Linux and bytes on macOS; normalize so
    telemetry is comparable across CI runners and laptops.
    """
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return peak if sys.platform == "darwin" else peak * 1024


def usable_cpus() -> int:
    """CPUs this process may actually run on.

    ``os.cpu_count()`` reports the host's cores, which overstates usable
    parallelism inside cgroup/affinity-limited containers (CI runners);
    the scheduler affinity mask is the honest number where available.
    """
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):  # non-Linux platforms
        return os.cpu_count() or 1


def host_info() -> Dict[str, object]:
    """Machine facts that contextualize wall-clock numbers.

    ``cpus`` is the host's core count; ``cpus_usable`` is the
    affinity-masked count this process can schedule on — the figure that
    actually bounds sweep parallelism in containerized CI.  ``machine``
    (the CPU architecture) and the compiler build string matter when
    comparing events/s baselines across runner pools: an arm64 runner
    and an x86_64 runner are different machines, not a regression.
    """
    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "python_compiler": platform.python_compiler(),
        "cpus": os.cpu_count() or 1,
        "cpus_usable": usable_cpus(),
    }


def bench_envelope(
    name: str,
    results: Any,
    *,
    quick: bool = False,
    extra: Optional[Mapping[str, Any]] = None,
) -> Dict[str, Any]:
    """The full, schema-versioned payload for one benchmark run.

    ``results`` is benchmark-shaped: a mapping of named numbers or a
    list of per-configuration records — it is stored verbatim.
    """
    payload: Dict[str, Any] = {
        "schema": BENCH_SCHEMA,
        "bench": name,
        "quick": quick,
        "host": host_info(),
        "peak_rss_bytes": peak_rss_bytes(),
        "results": dict(results) if isinstance(results, Mapping) else list(results),
    }
    if extra:
        payload.update(extra)
    return payload


def write_bench(
    name: str,
    results: Any,
    *,
    root: Union[str, Path],
    quick: bool = False,
    extra: Optional[Mapping[str, Any]] = None,
) -> Path:
    """Write ``<root>/BENCH_<name>.json``; returns the path written."""
    root = Path(root)
    root.mkdir(parents=True, exist_ok=True)
    path = root / f"BENCH_{name}.json"
    with open(path, "w") as fh:
        json.dump(
            bench_envelope(name, results, quick=quick, extra=extra),
            fh, indent=2, sort_keys=True,
        )
        fh.write("\n")
    return path


def load_bench(path: Union[str, Path]) -> Dict[str, Any]:
    """Read a ``BENCH_*.json`` file, validating its schema version."""
    path = Path(path)
    with open(path) as fh:
        data = json.load(fh)
    schema = data.get("schema")
    if not isinstance(schema, int) or schema < 1 or schema > BENCH_SCHEMA:
        raise ValueError(
            f"{path}: unsupported bench schema {schema!r} "
            f"(this build reads <= {BENCH_SCHEMA})"
        )
    if "results" not in data:
        raise ValueError(f"{path}: missing 'results' block")
    return data
