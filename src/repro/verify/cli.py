"""``python -m repro.verify``: model-check, lint, and trace conformance.

Subcommands::

    python -m repro.verify check --scheme Dir1CV2 -n 4
    python -m repro.verify check --scheme Dir4B -n 8 --por --stats stats.json
    python -m repro.verify check --scheme full -n 4 --cross-check
    python -m repro.verify check --scheme full -n 3 --liveness
    python -m repro.verify conform trace.json
    python -m repro.verify lint src/repro
    python -m repro.verify lint --list-rules

``check`` exits 0 only when the bounded state space was exhausted with no
violation; a violation prints the minimal counterexample trace.  With
``--por`` the explorer prunes independent interleavings (ample sets) —
same verdicts, far fewer states; ``--cross-check`` runs both full BFS
and POR and fails unless the verdicts agree.  ``--liveness`` additionally
searches for fairness-violating cycles (starved requests, livelocks) and
prints the lasso counterexample.  ``conform`` replays a recorded
:mod:`repro.obs` trace through the protocol model and rejects the first
traced event the model would not allow.  ``lint`` exits 0 when no
findings survive inline suppressions.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.core.registry import make_scheme
from repro.verify.explorer import ExploreResult, explore, por_cross_check
from repro.verify.lint import LINT_RULES, run_lint
from repro.verify.model import ModelConfig


def _config_for(args: argparse.Namespace, name: str) -> ModelConfig:
    return ModelConfig(
        scheme=make_scheme(name, args.nodes, seed=args.seed),
        num_nodes=args.nodes,
        blocks=tuple(range(args.lines)),
        max_inflight=args.inflight,
        sparse_ways=args.sparse_ways,
        include_drop=not args.no_drop,
        symmetry=not args.no_symmetry,
        max_states=args.max_states,
    )


def _write_stats(args: argparse.Namespace, payload: object) -> None:
    """Write the ``--stats`` JSON report (``-`` streams to stdout)."""
    if not args.stats:
        return
    text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    if args.stats == "-":
        sys.stdout.write(text)
    else:
        Path(args.stats).write_text(text)
        print(f"wrote stats to {args.stats}")


def cmd_check(args: argparse.Namespace) -> int:
    """Exhaustively explore the bounded state space of each scheme.

    ``--scheme`` accepts a comma-separated list; with several schemes the
    per-scheme results are printed as one summary table (plus the first
    counterexample, if any).
    """
    names = [n for n in args.scheme.split(",") if n.strip()]
    if not names:
        print("error: --scheme needs at least one scheme name",
              file=sys.stderr)
        return 2
    try:
        if args.cross_check:
            return _cross_check(args, names)
        if len(names) > 1:
            return _check_many(args, names)
        cfg = _config_for(args, names[0])
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    result = explore(cfg, por=args.por)
    store = "full map" if args.sparse_ways is None else (
        f"sparse 1x{args.sparse_ways}"
    )
    print(
        f"{result.scheme} on {result.num_nodes} nodes, "
        f"{len(cfg.blocks)} line(s), {store}, "
        f"<= {cfg.max_inflight} in-flight"
        + (f", POR ({result.canonicalizer} canon)" if result.por else "")
    )
    print(
        f"states: {result.states:,}  transitions: {result.transitions:,}  "
        f"max depth: {result.max_depth}  merged: {result.merged:,}"
        + (
            f"  pruned actions: {result.pruned:,} "
            f"(ample at {result.ample_states:,} states)"
            if result.por
            else ""
        )
    )
    _write_stats(args, result.stats_dict())
    status = 0
    if result.violation is not None:
        print("counterexample (minimal):")
        print(result.violation.format())
        return 1
    if result.truncated:
        print(
            f"state bound hit ({cfg.max_states:,}): exploration incomplete — "
            f"raise --max-states or shrink the config", file=sys.stderr,
        )
        return 2
    print("ok: every reachable state satisfies the coherence invariants")
    if args.liveness:
        status = _liveness([names[0]], args)
    return status


def _check_many(args: argparse.Namespace, names: Sequence[str]) -> int:
    from repro.analysis.report import format_verification_report

    results = [explore(_config_for(args, name), por=args.por)
               for name in names]
    print(format_verification_report(results))
    _write_stats(args, [r.stats_dict() for r in results])
    for result in results:
        if result.violation is not None:
            print(f"\ncounterexample for {result.scheme} (minimal):")
            print(result.violation.format())
            return 1
    if any(r.truncated for r in results):
        print(
            f"state bound hit ({args.max_states:,}): exploration incomplete — "
            f"raise --max-states or shrink the config", file=sys.stderr,
        )
        return 2
    if args.liveness:
        return _liveness(names, args)
    return 0


def _cross_check(args: argparse.Namespace, names: Sequence[str]) -> int:
    """POR soundness mode: full BFS vs POR must agree on every verdict."""
    from repro.analysis.report import format_verification_report

    rows: List[ExploreResult] = []
    stats: List[Dict[str, object]] = []
    disagreements = []
    violated = False
    for name in names:
        full, reduced, agree = por_cross_check(_config_for(args, name))
        rows.extend([full, reduced])
        stats.append({
            "scheme": name,
            "full": full.stats_dict(),
            "por": reduced.stats_dict(),
            "agree": agree,
        })
        if not agree:
            disagreements.append(name)
        if full.violation is not None or reduced.violation is not None:
            violated = True
        print(
            f"{name}: full {full.states:,} states ({full.verdict}) vs "
            f"POR {reduced.states:,} states ({reduced.verdict}) — "
            f"{'agree' if agree else 'DISAGREE'}"
        )
    print()
    print(format_verification_report(rows))
    _write_stats(args, stats)
    if disagreements:
        print(
            f"POR cross-check FAILED for: {', '.join(disagreements)}",
            file=sys.stderr,
        )
        return 1
    print("cross-check ok: POR and full BFS verdicts agree")
    return 1 if violated else 0


def _liveness(names: Sequence[str], args: argparse.Namespace) -> int:
    """Fairness-constrained cycle detection over each scheme's graph."""
    from repro.analysis.report import format_liveness_report
    from repro.verify.liveness import check_liveness

    results = [check_liveness(_config_for(args, name)) for name in names]
    print()
    print(format_liveness_report(results))
    for result in results:
        if result.violation is not None:
            print(f"\nlasso counterexample for {result.scheme}:")
            print(result.violation.format())
            return 1
    if any(r.truncated for r in results):
        print(
            f"liveness state bound hit ({args.max_states:,}): incomplete",
            file=sys.stderr,
        )
        return 2
    print("liveness ok: every request completes; no fair livelock cycle")
    return 0


def cmd_conform(args: argparse.Namespace) -> int:
    """Check that a recorded trace is a path in the protocol model."""
    from repro.verify.conformance import check_trace, format_conformance_report

    try:
        result = check_trace(
            args.trace,
            scheme=args.conform_scheme,
            num_nodes=args.conform_nodes,
            max_divergences=args.max_divergences,
        )
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(format_conformance_report(result))
    _write_stats(args, result.stats_dict())
    return 0 if result.ok else 1


def cmd_lint(args: argparse.Namespace) -> int:
    """Run the AST rules over the given files/directories."""
    if args.list_rules:
        for name, description in LINT_RULES.items():
            print(f"{name:22s} {description}")
        return 0
    paths = args.paths
    if not paths:
        # default: the installed repro package sources
        import repro

        paths = [str(Path(repro.__file__).parent)]
    missing = [p for p in paths if not Path(p).exists()]
    if missing:
        # a typo'd path must not read as a clean lint run (e.g. in CI)
        for p in missing:
            print(f"error: no such file or directory: {p}", file=sys.stderr)
        return 2
    findings = run_lint(paths)
    for finding in findings:
        print(finding.format())
    if findings:
        print(f"{len(findings)} finding(s)", file=sys.stderr)
        return 1
    print("lint clean")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Argument parser for ``check``, ``conform``, and ``lint``."""
    parser = argparse.ArgumentParser(
        prog="repro.verify",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("check", help="model-check one scheme's state space")
    p.add_argument("--scheme", default="full",
                   help="scheme name (registry); comma-separate several "
                        "for a summary table")
    p.add_argument("-n", "--nodes", type=int, default=3,
                   help="number of nodes (<= 5 for full BFS; --por reaches 8)")
    p.add_argument("--lines", type=int, default=1, choices=(1, 2),
                   help="modeled memory blocks")
    p.add_argument("--inflight", type=int, default=2,
                   help="max concurrent in-flight messages")
    p.add_argument("--sparse-ways", type=int, default=None, metavar="W",
                   help="model a 1-set, W-way sparse directory per home")
    p.add_argument("--no-drop", action="store_true",
                   help="disable silent clean-copy drops (smaller space)")
    p.add_argument("--no-symmetry", action="store_true",
                   help="disable symmetry reduction (debugging)")
    p.add_argument("--max-states", type=int, default=250_000)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--por", action="store_true",
                   help="partial-order reduction (prune provably "
                        "commuting delivery interleavings)")
    p.add_argument("--cross-check", action="store_true",
                   help="run full BFS and POR; fail unless verdicts agree")
    p.add_argument("--liveness", action="store_true",
                   help="also search for fair starvation/livelock cycles")
    p.add_argument("--stats", metavar="FILE",
                   help="write a JSON stats report ('-' for stdout)")
    p.set_defaults(func=cmd_check)

    p = sub.add_parser(
        "conform", help="check a recorded obs trace against the model"
    )
    p.add_argument("trace", help="trace file (chrome or jsonl)")
    p.add_argument("--scheme", dest="conform_scheme", default=None,
                   help="override the trace header's scheme")
    p.add_argument("--nodes", dest="conform_nodes", type=int, default=None,
                   help="override the trace header's processor count")
    p.add_argument("--max-divergences", type=int, default=10,
                   help="stop after this many diverging blocks")
    p.add_argument("--stats", metavar="FILE",
                   help="write a JSON stats report ('-' for stdout)")
    p.set_defaults(func=cmd_conform)

    p = sub.add_parser("lint", help="AST lint over simulator sources")
    p.add_argument("paths", nargs="*", help="files/dirs (default: repro pkg)")
    p.add_argument("--list-rules", action="store_true",
                   help="print the rule catalog and exit")
    p.set_defaults(func=cmd_lint)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Run the selected subcommand and return its exit status."""
    args = build_parser().parse_args(argv)
    return int(args.func(args))


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
