"""Benchmark results-persistence helpers."""

import json

import pytest

import benchmarks.common as common
from repro.machine import MachineConfig, run_workload
from repro.trace.scripted import ScriptedWorkload
from repro.trace.event import Read, Write


class TestPlainCoercion:
    def test_nested_structures(self):
        data = {"a": (1, 2), "b": {"c": [1.5, None, True]}}
        assert common._plain(data) == {"a": [1, 2], "b": {"c": [1.5, None, True]}}

    def test_int_keys_become_strings(self):
        assert common._plain({3: 4}) == {"3": 4}

    def test_stats_objects_flatten(self):
        cfg = MachineConfig(num_clusters=4, l1_bytes=64, l2_bytes=256)
        stats = run_workload(cfg, ScriptedWorkload([[Read(0)], [], [], []]))
        flat = common._plain(stats)
        assert isinstance(flat, dict)
        assert "exec_time" in flat

    def test_unknown_objects_stringified(self):
        class Odd:
            def __repr__(self):
                return "<odd>"

        assert common._plain(Odd()) == "<odd>"


class TestSaveResults:
    def test_writes_json(self, tmp_path, monkeypatch):
        monkeypatch.setattr(common, "RESULTS_DIR", tmp_path)
        path = common.save_results("unit", {"x": 1, "y": [2, 3]})
        assert path == tmp_path / "unit.json"
        record = json.loads(path.read_text())
        assert record == {"schema": common.RESULTS_SCHEMA, "x": 1, "y": [2, 3]}
        assert list(record)[0] == "schema"  # header leads the file

    def test_stats_summary_fields(self):
        cfg = MachineConfig(num_clusters=4, l1_bytes=64, l2_bytes=256)
        stats = run_workload(
            cfg, ScriptedWorkload([[Read(0), Write(0)], [], [], []])
        )
        summary = common.stats_summary(stats)
        for key in ("exec_time", "total_messages", "invalidations_sent",
                    "avg_invals_per_event"):
            assert key in summary
        json.dumps(summary)  # must be serializable as-is
