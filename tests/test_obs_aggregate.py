"""Cross-worker telemetry: exact merged tallies, Perfetto worker lanes.

The acceptance guard for sweep-scale observability: per-name tallies of
a merged parallel sweep equal the sums over the same points run
serially — even when every worker's ring buffer wrapped — and the
merged Chrome trace maps worker processes to ``pid`` lanes and
components to named ``tid`` lanes.
"""

import json

import pytest

from repro.analysis.sweeps import PointSpec, run_points
from repro.apps import UniformRandomWorkload
from repro.machine.config import MachineConfig
from repro.machine.system import run_workload
from repro.obs.aggregate import (
    AGGREGATE_SCHEMA,
    LANE_GAP_CYCLES,
    PointTelemetry,
    SweepAggregator,
    merge_metrics_dict,
)
from repro.obs.export import read_trace
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer


def _factory():
    return UniformRandomWorkload(4, refs_per_proc=60, heap_blocks=16)


def _specs(schemes=("full", "Dir2B")):
    base = MachineConfig(num_clusters=4)
    return [
        PointSpec(
            config=base.with_(scheme=s),
            workload_factory=_factory,
            label=f"scheme={s}",
        )
        for s in schemes
    ]


def _serial_reference(specs, capacity=1 << 20):
    """Per-name/per-comp tally sums over the points run one by one."""
    counts, comp_counts, emitted = {}, {}, 0
    for spec in specs:
        tracer = Tracer(capacity)
        run_workload(spec.config, spec.workload_factory(), obs=tracer)
        emitted += tracer.emitted
        for name, n in tracer.counts.items():
            counts[name] = counts.get(name, 0) + n
        for comp, n in tracer.comp_counts.items():
            comp_counts[comp] = comp_counts.get(comp, 0) + n
    return counts, comp_counts, emitted


class TestPointTelemetry:
    def test_capture_is_exact_after_ring_wraparound(self):
        spec = _specs()[0]
        tracer = Tracer(32)  # far smaller than the event volume
        run_workload(spec.config, spec.workload_factory(), obs=tracer)
        telemetry = PointTelemetry.capture(
            tracer, index=0, label=spec.label, wall_s=0.5
        )
        assert telemetry.dropped > 0  # the ring really wrapped
        assert len(telemetry.events) <= 32
        assert telemetry.emitted == tracer.emitted
        assert sum(telemetry.counts.values()) == telemetry.emitted
        assert telemetry.emitted - len(telemetry.events) == telemetry.dropped

    def test_capture_snapshots_not_references(self):
        tracer = Tracer(16)
        tracer.emit("sweep.point", ts=0.0, comp="sweep")
        telemetry = PointTelemetry.capture(
            tracer, index=0, label="", wall_s=0.0
        )
        tracer.emit("sweep.point", ts=1.0, comp="sweep")
        assert telemetry.counts == {"sweep.point": 1}
        assert len(telemetry.events) == 1


class TestMergedTallies:
    @pytest.mark.parametrize("jobs", [1, 2])
    def test_merged_equal_serial_sums_despite_wraparound(self, jobs):
        specs = _specs()
        ref_counts, ref_comps, ref_emitted = _serial_reference(specs)
        aggregate = SweepAggregator(capacity=64)  # forces wraparound
        stats = run_points(specs, jobs=jobs, aggregate=aggregate)
        assert all(s is not None for s in stats)
        assert aggregate.counts == ref_counts
        assert aggregate.comp_counts == ref_comps
        assert aggregate.emitted == ref_emitted
        assert aggregate.dropped > 0  # wraparound actually happened

    def test_parallel_sweep_uses_multiple_worker_lanes(self):
        aggregate = SweepAggregator(capacity=64)
        run_points(_specs(), jobs=2, aggregate=aggregate)
        assert aggregate.workers == 2

    def test_stats_identical_with_aggregation_on(self):
        specs = _specs()
        plain = [s.to_dict() for s in run_points(specs, jobs=2)]
        traced = [
            s.to_dict()
            for s in run_points(
                specs, jobs=2, aggregate=SweepAggregator(capacity=64)
            )
        ]
        assert json.dumps(traced, sort_keys=True) == json.dumps(
            plain, sort_keys=True
        )

    def test_cached_points_do_not_feed_the_aggregator(self, tmp_path):
        from repro.analysis.cache import ResultCache

        specs = _specs()
        cache = ResultCache(tmp_path)
        first = SweepAggregator()
        run_points(specs, cache=cache, aggregate=first)
        again = SweepAggregator()
        run_points(specs, cache=cache, aggregate=again)
        assert len(first.points) == len(specs)
        assert again.points == []  # everything came from the cache


class TestMergeMetricsDict:
    def test_counters_sum_gauges_max_histograms_add(self):
        a = MetricsRegistry(strict=False)
        a.counter("sweep_retries").inc(3)
        a.gauge("dir_peak_occupancy").set_max(5.0)
        a.histogram("txn_latency.read").observe(10.0)
        a.histogram("txn_latency.read").observe(100.0)
        block = a.to_dict()
        merged = MetricsRegistry(strict=False)
        merge_metrics_dict(merged, block)
        merge_metrics_dict(merged, block)
        out = merged.to_dict()
        assert out["counters"]["sweep_retries"] == 6
        assert out["gauges"]["dir_peak_occupancy"] == 5.0
        hist = out["histograms"]["txn_latency.read"]
        assert hist["count"] == 4
        assert hist["buckets"] == {
            ub: 2 * n
            for ub, n in block["histograms"]["txn_latency.read"][
                "buckets"
            ].items()
        }


def _telemetry(pid, index, events, *, counts=None):
    return PointTelemetry(
        index=index,
        label=f"p{index}",
        worker_pid=pid,
        wall_s=0.1,
        emitted=len(events),
        dropped=0,
        counts=counts or {},
        comp_counts={},
        events=events,
        metrics={"schema": 1, "counters": {}, "gauges": {}, "histograms": {}},
    )


class TestChromeLanes:
    def _aggregate(self):
        from repro.obs.tracer import TraceEvent

        agg = SweepAggregator(capacity=128)
        ev = [TraceEvent("txn.read", 5.0, kind="span", dur=20.0,
                         comp="directory", tid=1)]
        agg.add(_telemetry(101, 0, ev))
        agg.add(_telemetry(202, 1, list(ev)))
        agg.add(_telemetry(101, 2, list(ev)))  # second point, same worker
        return agg

    def test_worker_pids_become_process_lanes(self):
        trace = self._aggregate().to_chrome_trace()
        names = {
            r["pid"]: r["args"]["name"]
            for r in trace["traceEvents"]
            if r["name"] == "process_name"
        }
        assert names == {101: "worker 101", 202: "worker 202"}

    def test_components_become_named_thread_lanes(self):
        trace = self._aggregate().to_chrome_trace()
        threads = {
            (r["pid"], r["tid"]): r["args"]["name"]
            for r in trace["traceEvents"]
            if r["name"] == "thread_name"
        }
        assert threads[(101, 1)] == "directory"
        assert threads[(202, 1)] == "directory"

    def test_same_worker_points_lay_out_end_to_end(self):
        trace = self._aggregate().to_chrome_trace()
        spans = [
            r for r in trace["traceEvents"]
            if r["name"] == "sweep.point" and r["pid"] == 101
        ]
        assert [s["ts"] for s in spans] == [0.0, 25.0 + LANE_GAP_CYCLES]

    def test_merged_header(self):
        trace = self._aggregate().to_chrome_trace(meta={"app": "mp3d"})
        other = trace["otherData"]
        assert other["merged"] is True
        assert other["points"] == 3
        assert other["workers"] == 2
        assert other["app"] == "mp3d"

    def test_write_and_read_back(self, tmp_path):
        agg = self._aggregate()
        paths = agg.write(tmp_path)
        events = read_trace(paths["trace"])
        assert sum(1 for ev in events if ev.name == "txn.read") == 3
        # cat carries the component through the round trip
        assert {ev.comp for ev in events if ev.name == "txn.read"} == {
            "directory"
        }
        summary = json.loads(paths["summary"].read_text())
        assert summary["schema"] == AGGREGATE_SCHEMA
        assert summary["points"] == 3

    def test_write_gzipped(self, tmp_path):
        paths = self._aggregate().write(tmp_path, compress=True)
        assert paths["trace"].name.endswith(".gz")
        events = read_trace(paths["trace"])  # sniffed, not suffix-driven
        assert any(ev.name == "txn.read" for ev in events)


class TestSummary:
    def test_summary_counts(self):
        agg = SweepAggregator(capacity=8)
        tracer = Tracer(8)
        for i in range(12):
            tracer.emit("net.msg", ts=float(i), comp="network")
        agg.add(PointTelemetry.capture(tracer, index=0, label="", wall_s=0.0))
        s = agg.summary()
        assert s["emitted"] == 12
        assert s["retained"] == 8
        assert s["dropped"] == 4
        assert s["by_name"] == {"net.msg": 12}
        assert s["by_component"] == {"network": 12}

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            SweepAggregator(capacity=0)
