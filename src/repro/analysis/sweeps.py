"""Parameter-sweep runner: the experiment loop every study repeats.

The paper's evaluation is a grid of (application x scheme x directory
configuration) simulations; this module factors that loop out so
benchmarks, examples, and user studies share one implementation with
consistent result records.

Example::

    sweep = Sweep(
        base=MachineConfig(num_clusters=32),
        workload_factory=lambda: LUWorkload(32, matrix_n=48),
    )
    sweep.add_axis("scheme", ["full", "Dir3CV2", "Dir3B"])
    sweep.add_axis("sparse_size_factor", [None, 2.0, 1.0])
    results = sweep.run()
    print(results.table(["exec_time", "total_messages"]))
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.analysis.report import format_table
from repro.machine.config import MachineConfig
from repro.machine.stats import STATS_SCHEMA, SimStats
from repro.machine.system import run_workload
from repro.trace.workload import Workload


def load_stats_dict(data: Mapping[str, Any]) -> Dict[str, Any]:
    """Normalize a persisted ``SimStats.to_dict()`` record to schema 2.

    Accepts both the original unversioned shape (schema 1, no ``schema``
    key) and the current one; rejects records declaring a *newer* schema
    than this build understands.  Returns a plain dict always carrying
    ``schema``, so downstream code can index uniformly.
    """
    schema = data.get("schema", 1)
    if not isinstance(schema, int) or schema < 1 or schema > STATS_SCHEMA:
        raise ValueError(
            f"unsupported stats schema {schema!r} "
            f"(this build reads <= {STATS_SCHEMA})"
        )
    out = {"schema": STATS_SCHEMA}
    out.update({k: v for k, v in data.items() if k != "schema"})
    return out


def load_results_dict(data: Mapping[str, Any]) -> Dict[str, Any]:
    """Normalize a ``results/*.json`` file body (schema 1 or 2).

    Version-1 files had no top-level ``schema`` header; version-2 files
    (written by ``benchmarks.common.save_results``) do.  The figure
    payload is returned unchanged either way, without the header.
    """
    schema = data.get("schema", 1)
    if not isinstance(schema, int) or schema < 1 or schema > STATS_SCHEMA:
        raise ValueError(
            f"unsupported results schema {schema!r} "
            f"(this build reads <= {STATS_SCHEMA})"
        )
    return {k: v for k, v in data.items() if k != "schema"}


@dataclass(frozen=True)
class SweepPoint:
    """One grid point: the config overrides applied and the stats measured."""

    overrides: Tuple[Tuple[str, Any], ...]
    stats: SimStats

    def override(self, name: str) -> Any:
        """The value this point used for the named axis."""
        for key, value in self.overrides:
            if key == name:
                return value
        raise KeyError(name)

    def metric(self, name: str) -> Any:
        """A statistic by attribute name (callables invoked, dict fallback)."""
        value = getattr(self.stats, name, None)
        if value is None:
            value = self.stats.to_dict().get(name)
        if callable(value):
            value = value()
        if value is None:
            raise KeyError(f"unknown metric {name!r}")
        return value


class SweepResults:
    """Ordered collection of sweep points with tabular access."""

    def __init__(self, axes: Sequence[str], points: List[SweepPoint]) -> None:
        self.axes = list(axes)
        self.points = points

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self):
        return iter(self.points)

    def filter(self, **criteria) -> "SweepResults":
        """Points whose overrides match all the given values."""
        kept = [
            p
            for p in self.points
            if all(p.override(k) == v for k, v in criteria.items())
        ]
        return SweepResults(self.axes, kept)

    def metric_by(self, axis: str, metric: str) -> Dict[Any, Any]:
        """Map one axis value -> metric (requires the axis to be unique)."""
        out: Dict[Any, Any] = {}
        for p in self.points:
            key = p.override(axis)
            if key in out:
                raise ValueError(
                    f"axis {axis!r} is not unique across points; filter first"
                )
            out[key] = p.metric(metric)
        return out

    def table(self, metrics: Sequence[str]) -> str:
        """Aligned text table: one row per point, axes then metrics."""
        headers = self.axes + list(metrics)
        rows = []
        for p in self.points:
            row: List[Any] = [p.override(a) for a in self.axes]
            row.extend(p.metric(m) for m in metrics)
            rows.append(row)
        return format_table(headers, rows)


class Sweep:
    """A cartesian grid of MachineConfig overrides, run over one workload."""

    def __init__(
        self,
        base: MachineConfig,
        workload_factory: Callable[[], Workload],
        *,
        check_coherence: bool = False,
    ) -> None:
        self.base = base
        self.workload_factory = workload_factory
        self.check_coherence = check_coherence
        self._axes: List[Tuple[str, List[Any]]] = []

    def add_axis(self, name: str, values: Iterable[Any]) -> "Sweep":
        """Add a config field to sweep over; returns self for chaining."""
        values = list(values)
        if not values:
            raise ValueError(f"axis {name!r} has no values")
        if name in (n for n, _ in self._axes):
            raise ValueError(f"axis {name!r} already added")
        # fail fast on typos: the override must be a real config field
        self.base.with_(**{name: values[0]})
        self._axes.append((name, values))
        return self

    @property
    def axis_names(self) -> List[str]:
        return [name for name, _ in self._axes]

    def run(
        self,
        *,
        progress: Optional[Callable[[Mapping[str, Any], SimStats], None]] = None,
    ) -> SweepResults:
        """Run every grid point; optionally report progress per point."""
        if not self._axes:
            raise ValueError("add at least one axis before running")
        names = self.axis_names
        points: List[SweepPoint] = []
        for combo in itertools.product(*(vals for _, vals in self._axes)):
            overrides = dict(zip(names, combo))
            cfg = self.base.with_(**overrides)
            stats = run_workload(
                cfg, self.workload_factory(), check=self.check_coherence
            )
            if progress is not None:
                progress(overrides, stats)
            points.append(SweepPoint(tuple(overrides.items()), stats))
        return SweepResults(names, points)
