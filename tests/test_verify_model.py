"""The bounded model checker on correct schemes: exhaustion, soundness knobs."""

import pytest

from repro.core.registry import make_scheme
from repro.verify.explorer import explore, symmetry_permutations
from repro.verify.model import (
    ModelConfig,
    apply_action,
    enabled_actions,
    initial_state,
)


def _cfg(name="full", n=3, **kw):
    return ModelConfig(scheme=make_scheme(name, n), num_nodes=n, **kw)


def test_initial_state_is_all_invalid():
    cfg = _cfg()
    state = initial_state(cfg)
    assert all(st == "I" for row in state.caches for st in row)
    assert state.msgs == []
    assert len(state.stores) == 3


def test_enabled_actions_respect_inflight_bound():
    cfg = _cfg(max_inflight=1)
    state = initial_state(cfg)
    state.msgs.append(("read", 0, 0))
    kinds = {a[0] for a in enabled_actions(state, cfg)}
    # the network is full: only delivery can make progress
    assert kinds == {"deliver"}


def test_one_outstanding_request_per_node():
    cfg = _cfg(max_inflight=4)
    state = initial_state(cfg)
    state.msgs.append(("read", 0, 2))  # node 2 already has a request out
    issuers = {a[1] for a in enabled_actions(state, cfg) if a[0] == "read"}
    assert 2 not in issuers and {0, 1} <= issuers


def test_clone_shares_pinned_rngs():
    cfg = _cfg("Dir1NB")
    state = initial_state(cfg)
    copy = state.clone()
    assert copy.stores[0].scheme is not state.stores[0].scheme
    assert copy.stores[0].scheme.rng is state.stores[0].scheme.rng


def test_apply_action_leaves_source_state_untouched():
    cfg = _cfg()
    state = initial_state(cfg)
    successor, violations = apply_action(state, ("write", 1, 0), cfg)
    assert violations == []
    assert state.msgs == [] and successor.msgs == [("write", 0, 1)]


def test_full_bit_vector_explores_clean():
    result = explore(_cfg())
    assert result.ok and not result.truncated
    assert result.violation is None
    assert result.states > 100
    assert result.transitions > result.states


def test_symmetry_merges_states_without_changing_the_verdict():
    with_sym = explore(_cfg())
    without = explore(_cfg(symmetry=False))
    assert with_sym.violation is None and without.violation is None
    assert with_sym.states < without.states


def test_symmetry_group_fixes_the_home_node():
    cfg = _cfg()
    home = cfg.home(0)
    for perm in symmetry_permutations(cfg):
        assert perm[home] == home


def test_truncation_reports_incomplete():
    result = explore(_cfg(max_states=10))
    assert result.truncated and not result.ok


@pytest.mark.parametrize("name", ["Dir1B", "Dir1NB", "Dir2X", "DirLL"])
def test_small_configs_exhaust_quickly(name):
    result = explore(_cfg(name))
    assert result.ok, result.violation and result.violation.format()


def test_sparse_directory_config_explores_clean():
    result = explore(_cfg(sparse_ways=1, max_states=50_000))
    assert result.violation is None
