"""Cross-validation: the analytic Figure 2 model vs the full simulator.

The Monte-Carlo/closed-form model predicts the expected invalidation
messages per write given the sharing degree; the machine, running a
controlled sharing-degree workload, must land near that prediction.
This binds the two halves of the reproduction together: if either the
model's conventions or the simulator's accounting drifted, these tests
break.
"""

import pytest

from repro.analysis import exact_expected_invalidations
from repro.apps import SharingDegreeWorkload
from repro.machine import MachineConfig, run_workload
from repro.machine.stats import InvalCause

PROCS = 16


def simulate(scheme, sharers, *, rounds=6, blocks=48):
    wl = SharingDegreeWorkload(
        PROCS, sharers=sharers, num_blocks=blocks, rounds=rounds, seed=21
    )
    cfg = MachineConfig(num_clusters=PROCS, scheme=scheme)
    return run_workload(cfg, wl, check=True)


def sim_invals_per_write_event(stats):
    """Mean invalidations over write-caused events with >= 1 target."""
    hist = stats.inval_hist[InvalCause.WRITE]
    # skip size-0 events: writes to blocks whose only sharer is the writer
    events = sum(c for s, c in hist.items() if s > 0)
    invals = sum(s * c for s, c in hist.items())
    return invals / events if events else 0.0


class TestModelMatchesSimulation:
    """The simulator differs from the model in one systematic way: the
    model's writer is never a sharer, while the workload's writer may be
    one of the readers (prob sharers/P), and the home's invalidation is
    free.  Both shrink the simulated count, so we check the model's
    prediction brackets the measurement from above within that slack.
    """

    @pytest.mark.parametrize("sharers", [1, 2])
    def test_exact_regime_all_schemes_match(self, sharers):
        # below pointer overflow every scheme is exact: identical counts.
        # Degree must stay <= i-1 because the previous writer re-enters
        # the sharer set when the next round's readers forward from it,
        # making the effective degree sharers+1.
        base = simulate("full", sharers).invalidations_sent()
        for scheme in ("Dir3CV2", "Dir3B"):
            assert simulate(scheme, sharers).invalidations_sent() == base

    @pytest.mark.parametrize("scheme", ["full", "Dir3B", "Dir3CV2"])
    def test_prediction_brackets_measurement(self, scheme):
        sharers = 6
        predicted = exact_expected_invalidations(scheme, PROCS, sharers)
        measured = sim_invals_per_write_event(simulate(scheme, sharers))
        # home-free invalidation (-1 at most) and writer-among-readers
        # (-1 at most, prob 6/16) bound the downward bias
        assert predicted - 2.2 <= measured <= predicted + 0.5, (
            scheme, predicted, measured,
        )

    def test_scheme_ordering_preserved_end_to_end(self):
        sharers = 6
        sim = {
            s: sim_invals_per_write_event(simulate(s, sharers))
            for s in ("full", "Dir3CV2", "Dir3B")
        }
        model = {
            s: exact_expected_invalidations(s, PROCS, sharers)
            for s in ("full", "Dir3CV2", "Dir3B")
        }
        assert sim["full"] <= sim["Dir3CV2"] <= sim["Dir3B"]
        assert model["full"] <= model["Dir3CV2"] <= model["Dir3B"]

    def test_broadcast_plateau_visible_in_simulation(self):
        stats = simulate("Dir3B", 6)
        hist = stats.inval_hist[InvalCause.WRITE]
        # broadcast events: N-2 or N-1 invalidation messages
        assert any(s >= PROCS - 2 for s in hist), dict(hist)
