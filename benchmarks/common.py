"""Shared benchmark plumbing: persist regenerated results as JSON.

Every benchmark that regenerates a paper artifact calls
:func:`save_results` with a plain-data summary; the file lands in
``results/<name>.json`` next to this package, so EXPERIMENTS.md numbers
can be re-derived (and diffed across code changes) without re-reading
terminal output.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"

#: version of the results/*.json file format.  1 was the original
#: unversioned shape; 2 adds the top-level "schema" header (figure
#: numbers are unchanged).  repro.analysis.sweeps.load_results_dict
#: accepts both.
RESULTS_SCHEMA = 2


def _plain(value: Any) -> Any:
    """Coerce stats objects / numpy scalars / tuples into JSON-safe data."""
    if hasattr(value, "to_dict"):
        return _plain(value.to_dict())
    if isinstance(value, dict):
        return {str(k): _plain(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_plain(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if hasattr(value, "item"):  # numpy scalar
        return value.item()
    return str(value)


def save_results(name: str, data: Dict[str, Any]) -> Path:
    """Write ``results/<name>.json`` (schema-tagged); returns the path."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.json"
    record = {"schema": RESULTS_SCHEMA, **_plain(data)}
    with open(path, "w") as fh:
        json.dump(record, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def stats_summary(stats) -> Dict[str, Any]:
    """The per-run numbers EXPERIMENTS.md quotes."""
    return {
        "exec_time": stats.exec_time,
        "total_messages": stats.total_messages,
        "requests": stats.requests,
        "replies": stats.replies,
        "invalidations": stats.invalidations,
        "acknowledgements": stats.acknowledgements,
        "invalidation_events": stats.invalidation_events(),
        "invalidations_sent": stats.invalidations_sent(),
        "avg_invals_per_event": round(stats.avg_invals_per_event, 4),
        "sparse_replacements": stats.sparse_replacements,
        "nb_evictions": stats.nb_evictions,
    }
