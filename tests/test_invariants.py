"""Unit tests for the runtime coherence-invariant checker.

The fault suite proves healthy protocol runs never trip the checker;
these tests prove the checker actually *catches* broken states — each
invariant is violated by hand-tampering a finished machine, and the
checker must name it.
"""

import pytest

from repro.apps import MP3DWorkload
from repro.core.registry import SCHEME_FACTORIES, make_scheme
from repro.machine import DashSystem, MachineConfig
from repro.machine.cache import LineState
from repro.machine.invariants import (
    CoherenceViolation,
    InvariantChecker,
    machine_state_violations,
)

NUM_CLUSTERS = 4


def _system(**overrides):
    cfg = MachineConfig(
        num_clusters=NUM_CLUSTERS,
        l1_bytes=32,
        l2_bytes=64,
        block_bytes=16,
        **overrides,
    )
    wl = MP3DWorkload(NUM_CLUSTERS, num_particles=24, steps=2, seed=3)
    return DashSystem(cfg, wl)


def _ran_system(**overrides):
    system = _system(**overrides)
    system.run()
    return system


def _violations(system, **kw):
    return list(machine_state_violations(system, **kw))


def _shared_block(system):
    """Some (block, holder_cluster) with a clean cached copy."""
    for cluster in system.clusters:
        for cache in cluster.caches:
            for block, state in cache.l2.blocks():
                if state is LineState.SHARED:
                    return block, cluster.cluster_id
    raise RuntimeError("workload left no shared block to tamper with")


def _uncover(system):
    """Erase a live sharer from its home's presence entry; returns block."""
    block, holder = _shared_block(system)
    line = system.directories[system.home_of(block)].store.lookup(block)
    line.entry.remove_sharer(holder)
    return block


class TestViolationType:
    def test_fields_and_message(self):
        v = CoherenceViolation("single-writer", "two owners", block=7)
        assert v.invariant == "single-writer"
        assert v.block == 7
        assert "[single-writer]" in str(v)

    def test_is_assertion_error(self):
        # historical callers catch AssertionError from check_coherence
        assert issubclass(CoherenceViolation, AssertionError)


class TestMachineScan:
    def test_clean_run_has_no_violations(self):
        assert _violations(_ran_system()) == []

    def test_detects_uncovered_sharer(self):
        system = _ran_system()
        _uncover(system)
        found = _violations(system)
        assert any(v.invariant == "directory-coverage" for v in found)

    def test_detects_multiple_writers(self):
        system = _ran_system()
        block, holder = _shared_block(system)
        for cid in (holder, (holder + 1) % NUM_CLUSTERS):
            system.clusters[cid].caches[0].l2.install(block, LineState.DIRTY)
        found = _violations(system)
        assert any(v.invariant == "single-writer" for v in found)

    def test_detects_inclusion_breach(self):
        system = _ran_system()
        block, holder = _shared_block(system)
        cache = system.clusters[holder].caches[0]
        cache.l1.install(block, LineState.SHARED)
        cache.l2.invalidate(block)
        found = _violations(system)
        assert any(v.invariant == "cache-inclusion" for v in found)

    def test_skip_busy_ignores_in_flight_blocks(self):
        system = _ran_system()
        block = _uncover(system)
        system.directories[system.home_of(block)]._busy.add(block)
        assert _violations(system, skip_busy=True) == []
        assert _violations(system, skip_busy=False)


class TestPrecisionContract:
    def test_scheme_declarations(self):
        exact = {"full", "nonbroadcast", "linkedlist"}
        for name in SCHEME_FACTORIES:
            scheme = make_scheme(name, NUM_CLUSTERS)
            expected = "exact" if name in exact else "coarse"
            assert scheme.precision == expected, name

    def test_exact_scheme_with_degraded_entry_flags(self):
        class _DegradedEntry:
            def is_exact(self):
                return False

            def invalidation_targets(self, exclude=()):
                return range(NUM_CLUSTERS)

        system = _ran_system(scheme="full")
        block, _holder = _shared_block(system)
        home = system.home_of(block)
        line = system.directories[home].store.lookup(block)
        line.entry = _DegradedEntry()
        found = _violations(system)
        assert any(v.invariant == "precision-contract" for v in found)


class TestChecker:
    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            InvariantChecker(_system(), "paranoid")
        with pytest.raises(ValueError):
            InvariantChecker(_system(), "sampled", sample_interval=0)

    def test_strict_machine_raises_on_first_violation(self):
        system = _ran_system()
        system.strict = True
        checker = InvariantChecker(system, "strict")
        _uncover(system)
        with pytest.raises(CoherenceViolation):
            checker.check_machine(skip_busy=False)

    def test_lenient_machine_records_and_counts(self):
        system = _ran_system()
        checker = InvariantChecker(system, "strict")
        _uncover(system)
        checker.check_machine(skip_busy=False)
        assert checker.violations
        assert system.stats.invariant_violations == len(checker.violations)

    def test_sampled_mode_runs_scans(self):
        system = _system()
        system.invariants = InvariantChecker(system, "sampled", sample_interval=8)
        system.run()
        system.invariants.finalize(system.events.now)
        assert system.invariants.checks_run > 0
        assert system.invariants.violations == []

    def test_finalize_reports_lost_transactions(self):
        from repro.machine.directory import READ, Transaction

        system = _system()
        checker = InvariantChecker(system, "sampled")
        txn = Transaction(READ, 0, 1)
        checker.on_submit(txn, 10.0)
        checker.finalize(500.0)
        assert any(
            v.invariant == "lost-transaction" for v in checker.violations
        )

    def test_abandoned_transaction_is_not_lost(self):
        from repro.machine.directory import HINT, Transaction

        system = _system()
        checker = InvariantChecker(system, "sampled")
        txn = Transaction(HINT, 0, 1)
        checker.on_submit(txn, 10.0)
        checker.on_abandon(txn)
        checker.finalize(500.0)
        assert checker.violations == []

    def test_watchdog_trips_on_slow_transaction(self):
        from repro.machine.directory import READ, Transaction

        system = _system()
        checker = InvariantChecker(system, "sampled", watchdog_cycles=100.0)
        txn = Transaction(READ, 0, 1)
        checker.on_submit(txn, 0.0)
        checker.on_finish(txn, 99.0)
        assert checker.violations == []
        slow = Transaction(READ, 1, 1)
        checker.on_submit(slow, 0.0)
        checker.on_finish(slow, 101.0)
        assert any(v.invariant == "watchdog" for v in checker.violations)

    def test_watchdog_horizon_scales_with_retries(self):
        from repro.machine.directory import READ, Transaction

        system = _system()
        checker = InvariantChecker(system, "sampled", watchdog_cycles=100.0)
        retried = Transaction(READ, 2, 1)
        retried.attempts = 2  # horizon: 100 * 2**2 = 400
        checker.on_submit(retried, 0.0)
        checker.on_finish(retried, 399.0)
        assert checker.violations == []

    def test_inval_round_conservation(self):
        system = _system()
        checker = InvariantChecker(system, "sampled")
        checker.on_inval_round(
            home=0, recipient=1, targets=(0, 2, 3), invals=2, acks=3
        )
        assert checker.violations == []
        checker.on_inval_round(
            home=0, recipient=1, targets=(0, 2, 3), invals=2, acks=2
        )
        assert any(
            v.invariant == "inval-ack-conservation" for v in checker.violations
        )

    def test_check_coherence_delegates(self):
        system = _ran_system()
        system.check_coherence()  # healthy machine: no raise
        _uncover(system)
        with pytest.raises(AssertionError):
            system.check_coherence()
