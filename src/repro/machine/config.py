"""Machine configuration: geometry, latencies, and directory organization.

Defaults reproduce the paper's simulated machine (§5): 32 clusters of one
processor each, 16-byte blocks, 64 KB primary / 256 KB secondary caches,
and latencies calibrated to the DASH prototype — local accesses on the
order of 23 cycles, two-cluster remote accesses ≈ 60, three-cluster ≈ 80.
With the default latency parameters the composed transaction costs are
exactly 23 / 63 / 80 cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import Any, Dict, Optional


@dataclass(frozen=True)
class MachineConfig:
    """Immutable description of one simulated machine.

    Use :meth:`with_` (dataclass ``replace``) to derive variants for
    parameter sweeps.
    """

    # -- geometry ---------------------------------------------------------
    num_clusters: int = 32
    procs_per_cluster: int = 1
    block_bytes: int = 16

    # -- processor caches ---------------------------------------------------
    l1_bytes: int = 64 * 1024
    l1_assoc: int = 1
    l2_bytes: int = 256 * 1024
    l2_assoc: int = 1

    # -- latencies (processor cycles) ---------------------------------------
    l1_hit_cycles: float = 1.0
    l2_hit_cycles: float = 10.0
    bus_cycles: float = 23.0  # local bus + memory service (§5: ~23)
    bus_transfer_cycles: float = 23.0  # intra-cluster cache-to-cache
    net_msg_cycles: float = 20.0  # one network leg (uniform model)
    dir_service_cycles: float = 10.0  # directory lookup without memory
    cache_service_cycles: float = 10.0  # remote cache servicing a forward
    inval_service_cycles: float = 5.0  # invalidating one cache
    inval_issue_cycles: float = 3.0  # serialized send of each invalidation
    ctrl_occupancy_cycles: float = 6.0  # directory controller busy per txn
    sync_service_cycles: float = 5.0  # lock/barrier manager service

    # -- interconnect ---------------------------------------------------------
    network: str = "uniform"  # "uniform" | "mesh"

    # -- directory organization ----------------------------------------------
    scheme: str = "full"  # parsed by repro.core.make_scheme
    sparse_size_factor: Optional[float] = None  # None => full map
    sparse_assoc: int = 4
    sparse_policy: str = "random"  # lru | lra | random
    replacement_hints: bool = False  # notify directory on clean evictions
    #: pool the presence entry of this many consecutive home blocks
    #: (§7 "multiple memory blocks share one wide entry"); None = per-block
    shared_entry_group: Optional[int] = None

    # -- synchronization extension ---------------------------------------------
    coarse_lock_grant: bool = False  # §7: region-granular lock grants

    # -- memory consistency model -------------------------------------------------
    #: False = sequential consistency (processor blocks on every write
    #: until all acks arrive).  True = DASH's release consistency: writes
    #: are issued and retired in the background; lock/unlock/barrier ops
    #: (and the end of the program) fence until outstanding writes drain.
    release_consistency: bool = False

    # -- robustness ---------------------------------------------------------------
    #: invariant-checker horizon: a transaction outstanding longer than
    #: this (doubled per fault-layer retry) trips the watchdog invariant
    watchdog_cycles: float = 50_000.0

    # -- misc -------------------------------------------------------------------
    seed: int = 0

    # -- derived quantities -------------------------------------------------

    @property
    def num_processors(self) -> int:
        return self.num_clusters * self.procs_per_cluster

    @property
    def l2_blocks_per_cache(self) -> int:
        return max(1, self.l2_bytes // self.block_bytes)

    @property
    def total_cache_blocks(self) -> int:
        """Machine-wide secondary-cache capacity in blocks (size-factor base)."""
        return self.l2_blocks_per_cache * self.num_processors

    def home_of(self, block: int) -> int:
        """Home cluster of a memory block (round-robin interleave, §5)."""
        return block % self.num_clusters

    def block_of(self, addr: int) -> int:
        """Memory block containing a byte address."""
        return addr // self.block_bytes

    def validate(self) -> None:
        """Raise ValueError on any inconsistent field combination."""
        if self.num_clusters < 1:
            raise ValueError("num_clusters must be >= 1")
        if self.procs_per_cluster < 1:
            raise ValueError("procs_per_cluster must be >= 1")
        if self.block_bytes < 1 or self.block_bytes & (self.block_bytes - 1):
            raise ValueError("block_bytes must be a positive power of two")
        for name in ("l1_bytes", "l2_bytes"):
            if getattr(self, name) < self.block_bytes:
                raise ValueError(f"{name} must hold at least one block")
        for name in ("l1_assoc", "l2_assoc", "sparse_assoc"):
            if getattr(self, name) < 1:
                raise ValueError(f"{name} must be >= 1")
        if self.sparse_size_factor is not None and self.sparse_size_factor <= 0:
            raise ValueError("sparse_size_factor must be positive")
        if self.shared_entry_group is not None:
            if self.shared_entry_group < 1:
                raise ValueError("shared_entry_group must be >= 1")
            if self.sparse_size_factor is not None:
                raise ValueError(
                    "shared_entry_group and sparse_size_factor are mutually "
                    "exclusive directory organizations"
                )
        if self.network not in ("uniform", "mesh"):
            raise ValueError("network must be 'uniform' or 'mesh'")
        if self.watchdog_cycles <= 0:
            raise ValueError("watchdog_cycles must be positive")

    def with_(self, **changes) -> "MachineConfig":
        """A modified copy (dataclasses.replace wrapper)."""
        return replace(self, **changes)

    def cache_key_fields(self) -> Dict[str, Any]:
        """Canonical, JSON-safe mapping of every config field, sorted by name.

        This is the config half of the content-addressed result-cache key
        (see :mod:`repro.analysis.cache`): two configs hash equal exactly
        when every dataclass field compares equal, independent of how the
        config was constructed.  All fields are scalars (or ``None``), so
        the mapping serializes deterministically with ``sort_keys=True``.
        """
        return {f.name: getattr(self, f.name) for f in sorted(fields(self), key=lambda f: f.name)}

    # -- paper-style composed latencies (for documentation/tests) -----------

    @property
    def local_miss_cycles(self) -> float:
        """Read miss served by local memory (paper: ~23 cycles)."""
        return self.bus_cycles

    @property
    def remote_2cluster_cycles(self) -> float:
        """Clean remote read: request leg + home service + reply leg (~60)."""
        return 2 * self.net_msg_cycles + self.bus_cycles

    @property
    def remote_3cluster_cycles(self) -> float:
        """Dirty-remote read: 3 legs + directory + owner cache (~80)."""
        return (
            3 * self.net_msg_cycles
            + self.dir_service_cycles
            + self.cache_service_cycles
        )


def dash_prototype_config(**overrides) -> MachineConfig:
    """The DASH prototype of §2: 16 clusters x 4 processors, Dir16."""
    cfg = MachineConfig(num_clusters=16, procs_per_cluster=4, scheme="full")
    return cfg.with_(**overrides) if overrides else cfg


def paper_sim_config(**overrides) -> MachineConfig:
    """The §5 simulation machine: 32 clusters x 1 processor."""
    cfg = MachineConfig(num_clusters=32, procs_per_cluster=1)
    return cfg.with_(**overrides) if overrides else cfg
